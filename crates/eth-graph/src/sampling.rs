//! Top-K important-neighbour sampling (Eq. 2, Section III-B1).
//!
//! Starting from a labelled centre account, each hop selects the `K`
//! neighbours connected by the highest **average transaction value**, with
//! ties broken by **total transaction value** (as the paper specifies for
//! duplicate averages). Iterating for `h` hops yields the node set
//! `V_i = ⋃ₖ Vₖ` of the account-centred subgraph.

use crate::subgraph::{LocalTx, Subgraph, SubgraphError};
use crate::txgraph::TxGraph;
use std::borrow::Cow;
use std::collections::HashMap;

/// Fixed bucket edges for the sampled-subgraph size histograms — constant
/// so reports are comparable across runs and machines.
const SUBGRAPH_NODE_EDGES: &[f64] = &[8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0];
const SUBGRAPH_TX_EDGES: &[f64] = &[16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0];

/// Parameters of the subgraph sampler.
///
/// `#[non_exhaustive]`: construct with [`SamplerConfig::new`] or
/// [`SamplerConfig::default`] so future knobs are not semver breaks.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct SamplerConfig {
    /// Neighbours kept per node per hop (paper: K = 2000).
    pub top_k: usize,
    /// Number of hops (paper: 2).
    pub hops: usize,
}

impl SamplerConfig {
    /// A sampler keeping the `top_k` most important neighbours per node
    /// for `hops` hops.
    #[must_use]
    pub fn new(top_k: usize, hops: usize) -> Self {
        Self { top_k, hops }
    }
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self::new(2000, 2)
    }
}

/// Rank **all** neighbours of `node` by (avg value desc, total value desc,
/// neighbour id asc). The full ranking is k-independent, so callers (the
/// free sampler, [`crate::GraphStore`]'s per-account cache) truncate to
/// their own `top_k` — both paths share this one comparator, which is what
/// keeps streamed and rebuilt sampling bit-identical.
pub(crate) fn rank_neighbours(graph: &TxGraph, node: usize) -> Vec<usize> {
    // Combine both directions per neighbour: the edge importance used for
    // sampling is the best merged edge between the pair.
    let mut scored: Vec<(usize, f64, f64)> = graph
        .neighbours(node)
        .iter()
        .map(|&nb| {
            let mut best_avg = 0.0f64;
            let mut best_total = 0.0f64;
            for p in [graph.pair(node, nb), graph.pair(nb, node)].into_iter().flatten() {
                if p.avg_value() > best_avg
                    || (p.avg_value() == best_avg && p.total_value > best_total)
                {
                    best_avg = p.avg_value();
                    best_total = p.total_value;
                }
            }
            (nb, best_avg, best_total)
        })
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal))
            .then(a.0.cmp(&b.0))
    });
    scored.into_iter().map(|(nb, _, _)| nb).collect()
}

/// Extract the account-centred subgraph for `center` (Eq. 2), including all
/// transactions among the selected nodes.
pub fn sample_subgraph(
    graph: &TxGraph,
    center: usize,
    config: SamplerConfig,
    label: Option<usize>,
) -> Subgraph {
    sample_with_ranker(graph, center, config, label, |g, node| Cow::Owned(rank_neighbours(g, node)))
}

/// The sampling loop, generic over where ranked neighbour lists come from:
/// computed on the fly (the free function) or served from a pre-ranked
/// cache ([`crate::GraphStore`]). `ranked` must return the full
/// [`rank_neighbours`] ordering; truncation to `top_k` happens here.
pub(crate) fn sample_with_ranker<'g>(
    graph: &'g TxGraph,
    center: usize,
    config: SamplerConfig,
    label: Option<usize>,
    ranked: impl Fn(&'g TxGraph, usize) -> Cow<'g, [usize]>,
) -> Subgraph {
    let mut selected: Vec<usize> = vec![center];
    let mut in_set: HashMap<usize, usize> = HashMap::new();
    in_set.insert(center, 0);
    let mut frontier = vec![center];
    for _hop in 0..config.hops {
        let mut next = Vec::new();
        for &node in &frontier {
            let order = ranked(graph, node);
            for &nb in order.iter().take(config.top_k) {
                if let std::collections::hash_map::Entry::Vacant(e) = in_set.entry(nb) {
                    e.insert(selected.len());
                    selected.push(nb);
                    next.push(nb);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }

    // Collect all transactions whose endpoints are both selected. Iterating
    // each node's outgoing list visits every such transaction exactly once.
    let mut txs = Vec::new();
    for &node in &selected {
        for &ti in graph.sent_by(node) {
            let t = graph.tx(ti);
            if let (Some(&src), Some(&dst)) = (in_set.get(&t.from), in_set.get(&t.to)) {
                txs.push(LocalTx {
                    src,
                    dst,
                    value: t.value,
                    timestamp: t.timestamp,
                    fee: t.fee(),
                    contract_call: t.contract_call,
                });
            }
        }
    }
    txs.sort_by_key(|t| (t.timestamp, t.src, t.dst));

    obs::counter_add("graph.subgraphs", 1);
    obs::observe("graph.subgraph_nodes", SUBGRAPH_NODE_EDGES, selected.len() as f64);
    obs::observe("graph.subgraph_txs", SUBGRAPH_TX_EDGES, txs.len() as f64);
    let kinds = selected.iter().map(|&a| graph.kind(a)).collect();
    let sub = Subgraph::from_parts(selected, kinds, txs, label);
    // Constructed through the validated path: a clean graph always passes
    // (an inactive centre's edge-less singleton is the one benign
    // exception). Violations are *data* problems — duplicate records or
    // fault-injected poison already present in the TxGraph — which must
    // flow through to per-account quarantine with the same typed reason,
    // never panic the sampler; the counter makes them visible upstream.
    match sub.validate() {
        Ok(()) | Err(SubgraphError::NoEdges) => {}
        Err(_) => obs::counter_add("graph.sampled_invalid", 1),
    }
    sub
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::{AccountKind, TxRecord};

    fn tx(from: usize, to: usize, value: f64) -> TxRecord {
        TxRecord {
            from,
            to,
            value,
            timestamp: 10,
            gas_price: 1e-9,
            gas_used: 21_000.0,
            contract_call: false,
            submitted: true,
        }
    }

    /// 0 connects to 1 (avg 10), 2 (avg 5), 3 (avg 1); 1 connects to 4.
    fn star() -> TxGraph {
        let kinds = vec![AccountKind::Eoa; 6];
        TxGraph::build(
            kinds,
            vec![
                tx(0, 1, 10.0),
                tx(0, 2, 5.0),
                tx(0, 3, 1.0),
                tx(1, 4, 2.0),
                tx(5, 5, 99.0), // disconnected self-loop, must never appear
            ],
        )
    }

    #[test]
    fn center_is_local_node_zero() {
        let g = star();
        let s = sample_subgraph(&g, 0, SamplerConfig { top_k: 2, hops: 1 }, Some(3));
        assert_eq!(s.nodes[Subgraph::CENTER], 0);
        assert_eq!(s.label, Some(3));
    }

    #[test]
    fn top_k_prefers_high_average_value() {
        let g = star();
        let s = sample_subgraph(&g, 0, SamplerConfig { top_k: 2, hops: 1 }, None);
        // Neighbours ranked 1 (avg 10) then 2 (avg 5); 3 is dropped.
        assert_eq!(s.nodes, vec![0, 1, 2]);
    }

    #[test]
    fn two_hops_reach_neighbours_of_neighbours() {
        let g = star();
        let s = sample_subgraph(&g, 0, SamplerConfig { top_k: 2, hops: 2 }, None);
        assert!(s.nodes.contains(&4), "hop-2 node missing: {:?}", s.nodes);
        assert!(!s.nodes.contains(&5), "disconnected node leaked in");
    }

    #[test]
    fn ties_break_by_total_value() {
        // Both neighbours have avg 4; neighbour 2 has higher total.
        let kinds = vec![AccountKind::Eoa; 3];
        let g = TxGraph::build(kinds, vec![tx(0, 1, 4.0), tx(0, 2, 4.0), tx(0, 2, 4.0)]);
        let s = sample_subgraph(&g, 0, SamplerConfig { top_k: 1, hops: 1 }, None);
        assert_eq!(s.nodes, vec![0, 2]);
    }

    #[test]
    fn all_internal_transactions_collected() {
        let g = star();
        let s = sample_subgraph(&g, 0, SamplerConfig { top_k: 3, hops: 2 }, None);
        // Nodes {0,1,2,3,4}: txs 0->1, 0->2, 0->3, 1->4 are internal.
        assert_eq!(s.txs.len(), 4);
        for t in &s.txs {
            assert!(t.src < s.n() && t.dst < s.n());
        }
    }

    #[test]
    fn isolated_center_yields_singleton_graph() {
        let g = TxGraph::build(vec![AccountKind::Eoa; 2], vec![tx(0, 1, 1.0)]);
        // Account with no transactions at all.
        let g2 = TxGraph::build(vec![AccountKind::Eoa; 3], g.transactions().to_vec());
        let s = sample_subgraph(&g2, 2, SamplerConfig::default(), None);
        assert_eq!(s.nodes, vec![2]);
        assert!(s.txs.is_empty());
    }
}
