//! Adjacency-matrix builders for the GNN layers.

use tensor::Tensor;

/// Symmetrically normalised adjacency with self-loops,
/// `D^{-1/2} (A + I) D^{-1/2}` (the GCN propagation matrix of Eq. 14).
///
/// `edges` are directed `(src, dst, weight)` triples; the matrix is
/// symmetrised (`A[u][v] = A[v][u] = max of provided weights`) because GCN
/// operates on an undirected view. Pass weight 1.0 for an unweighted graph.
pub fn gcn_norm_adjacency(n: usize, edges: &[(usize, usize, f64)]) -> Tensor {
    let mut a = Tensor::zeros(n, n);
    for &(u, v, w) in edges {
        assert!(u < n && v < n, "edge ({u}, {v}) out of bounds for n = {n}");
        let w = w as f32;
        if w > a.get(u, v) {
            a.set(u, v, w);
            a.set(v, u, w);
        }
    }
    for i in 0..n {
        a.set(i, i, a.get(i, i).max(1.0)); // self-loop
    }
    let deg: Vec<f32> = (0..n).map(|r| a.row(r).iter().sum::<f32>()).collect();
    let inv_sqrt: Vec<f32> =
        deg.iter().map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 }).collect();
    for r in 0..n {
        for c in 0..n {
            let v = a.get(r, c) * inv_sqrt[r] * inv_sqrt[c];
            a.set(r, c, v);
        }
    }
    a
}

/// Row-normalised (random-walk) adjacency with self-loops, `D^{-1} (A + I)`.
/// Used by APPNP's propagation.
pub fn rw_norm_adjacency(n: usize, edges: &[(usize, usize, f64)]) -> Tensor {
    let mut a = Tensor::zeros(n, n);
    for &(u, v, w) in edges {
        assert!(u < n && v < n);
        let w = w as f32;
        if w > a.get(u, v) {
            a.set(u, v, w);
            a.set(v, u, w);
        }
    }
    for i in 0..n {
        a.set(i, i, a.get(i, i).max(1.0));
    }
    for r in 0..n {
        let s: f32 = a.row(r).iter().sum();
        if s > 0.0 {
            for x in a.row_mut(r) {
                *x /= s;
            }
        }
    }
    a
}

/// Log-scaled edge weights: `ln(1 + w)`. Raw ETH amounts span many orders of
/// magnitude; GNN inputs need bounded dynamic range.
pub fn log_scale_weight(w: f64) -> f64 {
    (1.0 + w.max(0.0)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcn_norm_is_symmetric_with_self_loops() {
        let a = gcn_norm_adjacency(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        for r in 0..3 {
            assert!(a.get(r, r) > 0.0, "self-loop missing at {r}");
            for c in 0..3 {
                assert!((a.get(r, c) - a.get(c, r)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn gcn_norm_known_values_for_pair() {
        // Two nodes, one edge: A+I = [[1,1],[1,1]], deg = 2 each, so every
        // entry becomes 1/2.
        let a = gcn_norm_adjacency(2, &[(0, 1, 1.0)]);
        for r in 0..2 {
            for c in 0..2 {
                assert!((a.get(r, c) - 0.5).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn rw_norm_rows_sum_to_one() {
        let a = rw_norm_adjacency(4, &[(0, 1, 2.0), (1, 2, 3.0), (2, 3, 1.0)]);
        for r in 0..4 {
            let s: f32 = a.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    #[test]
    fn isolated_node_keeps_unit_self_loop_row() {
        let a = rw_norm_adjacency(2, &[]);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn log_scale_is_monotone_and_nonnegative() {
        assert_eq!(log_scale_weight(0.0), 0.0);
        assert!(log_scale_weight(10.0) > log_scale_weight(1.0));
        assert!(log_scale_weight(-5.0) >= 0.0); // clamps negatives
    }
}
