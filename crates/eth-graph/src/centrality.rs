//! Node centralities for adaptive graph augmentation (Section IV-A3).
//!
//! The contrastive-learning branch removes *unimportant* edges, where edge
//! importance derives from node centrality. The paper uses three measures —
//! degree, eigenvector and PageRank centrality — and we follow GCA (Zhu et
//! al., 2021) in defining the centrality of an edge as the mean of its
//! endpoints' (log-) centralities.

/// Degree centrality: degree / (n - 1).
pub fn degree_centrality(adj: &[Vec<usize>]) -> Vec<f64> {
    let n = adj.len();
    let denom = (n.saturating_sub(1)).max(1) as f64;
    adj.iter().map(|nbrs| nbrs.len() as f64 / denom).collect()
}

/// Eigenvector centrality via power iteration on the undirected adjacency.
/// Returns the (L2-normalised, non-negative) dominant eigenvector.
pub fn eigenvector_centrality(adj: &[Vec<usize>], iters: usize) -> Vec<f64> {
    let n = adj.len();
    if n == 0 {
        return Vec::new();
    }
    let mut x = vec![1.0 / (n as f64).sqrt(); n];
    for _ in 0..iters {
        let mut next = vec![0.0; n];
        for (u, nbrs) in adj.iter().enumerate() {
            for &v in nbrs {
                next[u] += x[v];
            }
        }
        // Keep a small self-weight so isolated nodes do not collapse to 0
        // and the iteration cannot oscillate on bipartite graphs.
        for (nx, &old) in next.iter_mut().zip(&x) {
            *nx += 0.1 * old;
        }
        let norm = next.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-12 {
            return x;
        }
        for v in &mut next {
            *v /= norm;
        }
        x = next;
    }
    x
}

/// PageRank with damping `d` on the undirected adjacency. Dangling nodes
/// redistribute uniformly. Scores sum to 1.
pub fn pagerank(adj: &[Vec<usize>], d: f64, iters: usize) -> Vec<f64> {
    let n = adj.len();
    if n == 0 {
        return Vec::new();
    }
    let mut pr = vec![1.0 / n as f64; n];
    for _ in 0..iters {
        let mut next = vec![(1.0 - d) / n as f64; n];
        let mut dangling = 0.0;
        for (u, nbrs) in adj.iter().enumerate() {
            if nbrs.is_empty() {
                dangling += pr[u];
            } else {
                let share = d * pr[u] / nbrs.len() as f64;
                for &v in nbrs {
                    next[v] += share;
                }
            }
        }
        let spread = d * dangling / n as f64;
        for v in &mut next {
            *v += spread;
        }
        pr = next;
    }
    pr
}

/// Which centrality measure drives the augmentation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CentralityMeasure {
    Degree,
    Eigenvector,
    PageRank,
}

/// Compute the chosen node centrality.
pub fn node_centrality(adj: &[Vec<usize>], measure: CentralityMeasure) -> Vec<f64> {
    match measure {
        CentralityMeasure::Degree => degree_centrality(adj),
        CentralityMeasure::Eigenvector => eigenvector_centrality(adj, 50),
        CentralityMeasure::PageRank => pagerank(adj, 0.85, 50),
    }
}

/// Edge centrality: mean of the endpoints' log-centralities (GCA, Eq. 7 of
/// Zhu et al. 2021). A small epsilon guards `log(0)`.
pub fn edge_centrality(node_c: &[f64], edges: &[(usize, usize)]) -> Vec<f64> {
    edges
        .iter()
        .map(|&(u, v)| (((node_c[u] + 1e-9).ln()) + ((node_c[v] + 1e-9).ln())) / 2.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2: middle node is most central under every measure.
    fn path3() -> Vec<Vec<usize>> {
        vec![vec![1], vec![0, 2], vec![1]]
    }

    #[test]
    fn degree_centrality_path() {
        let c = degree_centrality(&path3());
        assert_eq!(c, vec![0.5, 1.0, 0.5]);
    }

    #[test]
    fn eigenvector_centrality_peaks_at_middle() {
        let c = eigenvector_centrality(&path3(), 100);
        assert!(c[1] > c[0] && c[1] > c[2]);
        assert!((c[0] - c[2]).abs() < 1e-9, "symmetry broken: {c:?}");
    }

    #[test]
    fn pagerank_sums_to_one_and_peaks_at_middle() {
        let pr = pagerank(&path3(), 0.85, 100);
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pr[1] > pr[0]);
    }

    #[test]
    fn pagerank_handles_dangling_nodes() {
        let adj = vec![vec![1], vec![0], vec![]]; // node 2 isolated
        let pr = pagerank(&adj, 0.85, 100);
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pr[2] > 0.0);
    }

    #[test]
    fn edge_centrality_orders_by_endpoint_importance() {
        let node_c = vec![0.5, 1.0, 0.5];
        let ec = edge_centrality(&node_c, &[(0, 1), (0, 2)]);
        assert!(ec[0] > ec[1], "edge touching the hub should rank higher");
    }

    #[test]
    fn empty_graph_is_fine() {
        let adj: Vec<Vec<usize>> = Vec::new();
        assert!(eigenvector_centrality(&adj, 10).is_empty());
        assert!(pagerank(&adj, 0.85, 10).is_empty());
    }
}
