//! Message-passing layers: GCN, GAT, GIN, GraphSAGE and APPNP propagation.
//!
//! All layers are built on the autodiff tape; adjacency matrices enter as
//! constant leaves.

use nn::{Activation, Ctx, Linear, Mlp, ParamId, ParamStore};
use rand::Rng;
use std::sync::Arc;
use tensor::{Csr, Tape, Var};

/// Graph convolution (Kipf & Welling): `act(Â H W + b)` where `Â` is the
/// symmetrically normalised adjacency.
pub struct GcnLayer {
    linear: Linear,
}

impl GcnLayer {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_in: usize,
        d_out: usize,
        act: Activation,
    ) -> Self {
        Self { linear: Linear::new(store, rng, name, d_in, d_out, act) }
    }

    /// `adj` must be an `(n, n)` constant leaf on the same tape.
    pub fn forward(
        &self,
        tape: &mut Tape,
        ctx: &mut Ctx,
        store: &ParamStore,
        adj: Var,
        h: Var,
    ) -> Var {
        let agg = tape.matmul(adj, h);
        self.linear.forward(tape, ctx, store, agg)
    }

    /// Sparse variant of [`GcnLayer::forward`]: the adjacency stays off the
    /// tape as a constant [`Csr`]. Bit-identical to the dense path (see the
    /// ordering contract on [`Csr`]), but `Â H` costs O(nnz · d) instead of
    /// O(n² · d) and the never-read adjacency gradient is skipped.
    pub fn forward_csr(
        &self,
        tape: &mut Tape,
        ctx: &mut Ctx,
        store: &ParamStore,
        adj: &Arc<Csr>,
        h: Var,
    ) -> Var {
        let agg = tape.spmm(adj, h);
        self.linear.forward(tape, ctx, store, agg)
    }

    /// Batched variant of [`GcnLayer::forward`] for a stack of `B` dense
    /// square adjacencies: `adj` is `(B·c, c)` with block `s` in rows
    /// `s·c..(s+1)·c`, and `h` is `(B·c, d)`. Each block's product is
    /// bit-identical to the per-graph dense path (see
    /// `Tape::seg_block_matmul`).
    pub fn forward_blocked(
        &self,
        tape: &mut Tape,
        ctx: &mut Ctx,
        store: &ParamStore,
        adj: Var,
        h: Var,
    ) -> Var {
        let agg = tape.seg_block_matmul(adj, h);
        self.linear.forward(tape, ctx, store, agg)
    }
}

/// One single-head graph attention layer (Velickovic et al.), matching
/// Eqs. 7-9: per-edge scores from `[H_i || H_j]`, per-destination softmax,
/// ELU aggregation. Multi-head attention concatenates several of these.
pub struct GatHead {
    w: ParamId,
    attn: ParamId,
    pub negative_slope: f32,
}

impl GatHead {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_in: usize,
        d_out: usize,
    ) -> Self {
        Self {
            w: store.xavier(format!("{name}.w"), d_in, d_out, rng),
            attn: store.xavier(format!("{name}.a"), 2 * d_out, 1, rng),
            negative_slope: 0.2,
        }
    }

    /// `src_h` optionally overrides the per-edge source representations
    /// (used by the alignment layer of Eq. 6 where neighbour features are
    /// fused with edge features); when `None` they are gathered from `h`.
    #[allow(clippy::too_many_arguments)]
    pub fn forward(
        &self,
        tape: &mut Tape,
        ctx: &mut Ctx,
        store: &ParamStore,
        h: Var,
        src_h: Option<Var>,
        src: &Arc<Vec<usize>>,
        dst: &Arc<Vec<usize>>,
        n: usize,
    ) -> Var {
        let w = ctx.var(tape, store, self.w);
        let a = ctx.var(tape, store, self.attn);
        let hs = match src_h {
            Some(s) => tape.matmul(s, w),
            None => {
                let hw = tape.matmul(h, w);
                tape.gather_rows(hw, src.clone())
            }
        };
        let hw = tape.matmul(h, w);
        let hd = tape.gather_rows(hw, dst.clone());
        let cat = tape.concat_cols(hs, hd);
        let score = tape.matmul(cat, a);
        let score = tape.leaky_relu(score, self.negative_slope);
        let alpha = tape.segment_softmax(score, dst.clone());
        let msg = tape.mul_col_broadcast(hs, alpha);
        let agg = tape.scatter_add_rows(msg, dst.clone(), n);
        tape.elu(agg, 1.0)
    }
}

/// Multi-head GAT: heads are concatenated (the usual hidden-layer variant).
pub struct GatLayer {
    pub heads: Vec<GatHead>,
}

impl GatLayer {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_in: usize,
        d_out_per_head: usize,
        n_heads: usize,
    ) -> Self {
        let heads = (0..n_heads)
            .map(|k| GatHead::new(store, rng, &format!("{name}.h{k}"), d_in, d_out_per_head))
            .collect();
        Self { heads }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn forward(
        &self,
        tape: &mut Tape,
        ctx: &mut Ctx,
        store: &ParamStore,
        h: Var,
        src_h: Option<Var>,
        src: &Arc<Vec<usize>>,
        dst: &Arc<Vec<usize>>,
        n: usize,
    ) -> Var {
        let mut out: Option<Var> = None;
        for head in &self.heads {
            let o = head.forward(tape, ctx, store, h, src_h, src, dst, n);
            out = Some(match out {
                None => o,
                Some(acc) => tape.concat_cols(acc, o),
            });
        }
        out.expect("GAT layer needs at least one head")
    }
}

/// Graph isomorphism layer (Xu et al.): `MLP((1 + ε) h_i + Σ_j h_j)`.
/// `ε` is fixed to 0 (GIN-0), the common strong default.
pub struct GinLayer {
    mlp: Mlp,
}

impl GinLayer {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_in: usize,
        d_out: usize,
    ) -> Self {
        Self { mlp: Mlp::new(store, rng, name, &[d_in, d_out, d_out], Activation::Relu) }
    }

    /// `adj_unnorm` is the raw (0/1 or weighted) adjacency without
    /// self-loops; the `(1 + ε) h` term supplies the self-contribution.
    pub fn forward(
        &self,
        tape: &mut Tape,
        ctx: &mut Ctx,
        store: &ParamStore,
        adj_unnorm: Var,
        h: Var,
    ) -> Var {
        let agg = tape.matmul(adj_unnorm, h);
        let summed = tape.add(agg, h);
        self.mlp.forward(tape, ctx, store, summed)
    }
}

/// GraphSAGE with mean aggregation: `act([h_i || mean_j h_j] W + b)`.
pub struct SageLayer {
    linear: Linear,
}

impl SageLayer {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_in: usize,
        d_out: usize,
        act: Activation,
    ) -> Self {
        Self { linear: Linear::new(store, rng, name, 2 * d_in, d_out, act) }
    }

    /// `adj_rownorm` must be a row-normalised neighbour-mean operator.
    pub fn forward(
        &self,
        tape: &mut Tape,
        ctx: &mut Ctx,
        store: &ParamStore,
        adj_rownorm: Var,
        h: Var,
    ) -> Var {
        let mean = tape.matmul(adj_rownorm, h);
        let cat = tape.concat_cols(h, mean);
        self.linear.forward(tape, ctx, store, cat)
    }
}

/// APPNP propagation (Klicpera et al.): `Z ← (1 − α) Â Z + α Z₀`, iterated
/// `k` times after a feature MLP (which the caller owns).
pub fn appnp_propagate(tape: &mut Tape, adj: Var, z0: Var, alpha: f32, k: usize) -> Var {
    let mut z = z0;
    for _ in 0..k {
        let prop = tape.matmul(adj, z);
        let scaled = tape.scale(prop, 1.0 - alpha);
        let teleport = tape.scale(z0, alpha);
        z = tape.add(scaled, teleport);
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::Tensor;

    fn setup() -> (ParamStore, StdRng) {
        (ParamStore::new(), StdRng::seed_from_u64(9))
    }

    fn line_graph_edges() -> (Arc<Vec<usize>>, Arc<Vec<usize>>) {
        // 0 -> 1 -> 2, plus self-loops.
        (Arc::new(vec![0, 1, 0, 1, 2]), Arc::new(vec![1, 2, 0, 1, 2]))
    }

    #[test]
    fn gcn_layer_shapes() {
        let (mut store, mut rng) = setup();
        let layer = GcnLayer::new(&mut store, &mut rng, "g", 4, 8, Activation::Relu);
        let mut tape = Tape::new();
        let mut ctx = Ctx::new(&store);
        let adj = tape.leaf(Tensor::eye(3));
        let h = tape.leaf(Tensor::ones(3, 4));
        let out = layer.forward(&mut tape, &mut ctx, &store, adj, h);
        assert_eq!(tape.value(out).shape(), (3, 8));
    }

    #[test]
    fn gcn_sparse_forward_and_backward_bit_equal_dense() {
        let (mut store, mut rng) = setup();
        let layer = GcnLayer::new(&mut store, &mut rng, "g", 4, 8, Activation::Relu);
        let adj_dense = Tensor::from_vec(3, 3, vec![0.7, 0.0, 0.1, 0.0, 0.5, 0.0, 0.1, 0.0, 0.9]);
        let h0 = Tensor::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.1 - 0.5);

        let mut td = Tape::new();
        let mut cd = Ctx::new(&store);
        let adj = td.leaf(adj_dense.clone());
        let hd = td.leaf(h0.clone());
        let outd = layer.forward(&mut td, &mut cd, &store, adj, hd);
        let lossd = td.sum_all(outd);
        td.backward(lossd);

        let csr = Arc::new(Csr::from_dense(&adj_dense));
        let mut ts = Tape::new();
        let mut cs = Ctx::new(&store);
        let hs = ts.leaf(h0);
        let outs = layer.forward_csr(&mut ts, &mut cs, &store, &csr, hs);
        let losss = ts.sum_all(outs);
        ts.backward(losss);

        assert_eq!(td.value(outd).to_bits_vec(), ts.value(outs).to_bits_vec());
        assert_eq!(td.grad(hd).unwrap().to_bits_vec(), ts.grad(hs).unwrap().to_bits_vec());
        // Parameter gradients must agree too.
        store.zero_grad();
        cd.accumulate_grads(&td, &mut store);
        let dense_grads: Vec<Vec<u32>> =
            store.ids().map(|id| store.grad(id).to_bits_vec()).collect();
        store.zero_grad();
        cs.accumulate_grads(&ts, &mut store);
        let sparse_grads: Vec<Vec<u32>> =
            store.ids().map(|id| store.grad(id).to_bits_vec()).collect();
        assert_eq!(dense_grads, sparse_grads);
    }

    #[test]
    fn gat_attention_normalised_and_differentiable() {
        let (mut store, mut rng) = setup();
        let layer = GatLayer::new(&mut store, &mut rng, "gat", 4, 5, 2);
        let mut tape = Tape::new();
        let mut ctx = Ctx::new(&store);
        let (src, dst) = line_graph_edges();
        let h = tape.leaf(Tensor::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.1));
        let out = layer.forward(&mut tape, &mut ctx, &store, h, None, &src, &dst, 3);
        assert_eq!(tape.value(out).shape(), (3, 10)); // 2 heads x 5
        let pooled = tape.mean_all(out);
        tape.backward(pooled);
        ctx.accumulate_grads(&tape, &mut store);
        assert!(store.grad_norm() > 0.0, "no gradient reached GAT params");
    }

    #[test]
    fn gat_isolated_node_keeps_self_message() {
        // A node with only its self-loop must still produce finite output.
        let (mut store, mut rng) = setup();
        let layer = GatHead::new(&mut store, &mut rng, "g", 2, 3);
        let mut tape = Tape::new();
        let mut ctx = Ctx::new(&store);
        let src = Arc::new(vec![0usize, 1]);
        let dst = Arc::new(vec![0usize, 1]);
        let h = tape.leaf(Tensor::from_vec(2, 2, vec![1.0, 2.0, -1.0, 0.5]));
        let out = layer.forward(&mut tape, &mut ctx, &store, h, None, &src, &dst, 2);
        assert!(tape.value(out).all_finite());
    }

    #[test]
    fn gin_layer_uses_sum_aggregation() {
        let (mut store, mut rng) = setup();
        let layer = GinLayer::new(&mut store, &mut rng, "gin", 3, 6);
        let mut tape = Tape::new();
        let mut ctx = Ctx::new(&store);
        let adj = tape.leaf(Tensor::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]));
        let h = tape.leaf(Tensor::from_fn(2, 3, |r, _| r as f32 + 1.0));
        let out = layer.forward(&mut tape, &mut ctx, &store, adj, h);
        assert_eq!(tape.value(out).shape(), (2, 6));
    }

    #[test]
    fn sage_layer_concatenates_self_and_mean() {
        let (mut store, mut rng) = setup();
        let layer = SageLayer::new(&mut store, &mut rng, "sage", 3, 4, Activation::Relu);
        let mut tape = Tape::new();
        let mut ctx = Ctx::new(&store);
        let adj = tape.leaf(Tensor::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]));
        let h = tape.leaf(Tensor::ones(2, 3));
        let out = layer.forward(&mut tape, &mut ctx, &store, adj, h);
        assert_eq!(tape.value(out).shape(), (2, 4));
    }

    #[test]
    fn appnp_zero_alpha_is_pure_propagation_one_is_identity() {
        let mut tape = Tape::new();
        let adj = tape.leaf(Tensor::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]));
        let z0 = tape.leaf(Tensor::from_vec(2, 1, vec![1.0, 0.0]));
        let z_id = appnp_propagate(&mut tape, adj, z0, 1.0, 3);
        assert_eq!(tape.value(z_id).data(), &[1.0, 0.0]);
        let z_prop = appnp_propagate(&mut tape, adj, z0, 0.0, 1);
        assert_eq!(tape.value(z_prop).data(), &[0.0, 1.0]); // swapped by A
    }
}
