//! Conversion from [`eth_graph::Subgraph`] to the tensors a GNN consumes.

use eth_graph::adj::{gcn_norm_adjacency, log_scale_weight};
use eth_graph::Subgraph;
use std::sync::Arc;
use tensor::{Csr, Tensor};

/// A subgraph lowered to tensors.
///
/// * `x` — node features `(n, d)` (15-dim deep features by default),
/// * `src` / `dst` — directed merged GSG edges **plus one self-loop per
///   node** (appended at the end), for attention-style layers,
/// * `edge_feat` — per-edge features `[log(1+w), log(1+t)]`, zeros for the
///   self-loops (Section III-B3's `r_ij = [w, t]`),
/// * `gsg_adj` — symmetrically normalised weighted adjacency for GCN-style
///   layers on the static view,
/// * `slice_adj` — per-time-slice normalised adjacencies for the LDG.
pub struct GraphTensors {
    pub n: usize,
    pub x: Tensor,
    pub src: Arc<Vec<usize>>,
    pub dst: Arc<Vec<usize>>,
    pub edge_feat: Tensor,
    pub gsg_adj: Tensor,
    pub slice_adj: Vec<Tensor>,
    /// CSR view of `gsg_adj`, built once at lowering for sparse message
    /// passing; the dense sibling is kept for baselines that consume it.
    pub gsg_adj_csr: Arc<Csr>,
    /// CSR views of `slice_adj`, one per time slice (the LDG hot path).
    pub slice_adj_csr: Vec<Arc<Csr>>,
    /// The centre account's transaction sequence, time-ordered and capped at
    /// [`CENTER_SEQ_LEN`] rows of `[log-value, direction, log-fee,
    /// normalised time, is-contract-call]` — consumed by sequence models
    /// (the BERT4ETH baseline).
    pub center_seq: Tensor,
    pub label: Option<usize>,
}

/// Maximum length of the centre transaction sequence.
pub const CENTER_SEQ_LEN: usize = 64;

fn build_center_seq(graph: &Subgraph) -> Tensor {
    let mut txs: Vec<&eth_graph::LocalTx> = graph
        .txs
        .iter()
        .filter(|t| t.src == Subgraph::CENTER || t.dst == Subgraph::CENTER)
        .collect();
    txs.sort_by_key(|t| t.timestamp);
    if txs.len() > CENTER_SEQ_LEN {
        // Keep the most recent transactions, like BERT4ETH's truncation.
        txs.drain(..txs.len() - CENTER_SEQ_LEN);
    }
    if txs.is_empty() {
        return Tensor::zeros(1, 5);
    }
    let t_min = txs.first().unwrap().timestamp as f64;
    let t_max = txs.last().unwrap().timestamp as f64;
    let span = (t_max - t_min).max(1.0);
    Tensor::from_fn(txs.len(), 5, |r, c| {
        let t = txs[r];
        match c {
            0 => 0.2 * (1.0 + t.value.max(0.0)).ln() as f32,
            1 => {
                if t.src == Subgraph::CENTER {
                    1.0
                } else {
                    -1.0
                }
            }
            2 => 0.2 * (1.0 + t.fee.max(0.0) * 1e3).ln() as f32,
            3 => ((t.timestamp as f64 - t_min) / span) as f32,
            _ => t.contract_call as u8 as f32,
        }
    })
}

impl GraphTensors {
    /// Lower a subgraph with precomputed node features `x` and `t_slices`
    /// LDG time slices.
    pub fn new(graph: &Subgraph, x: Tensor, t_slices: usize) -> Self {
        let n = graph.n();
        assert_eq!(x.rows(), n, "feature rows must match node count");
        // `nan@gnn.lower` injection point: poison the lowered feature
        // matrix, simulating tensor conversion going wrong after the
        // subgraph itself validated clean.
        let mut x = x;
        if faults::active() && n > 0 {
            let v = x.get(0, 0);
            x.set(0, 0, faults::poison_f32("gnn.lower", None, v));
        }
        let merged = graph.merged_edges();
        let mut src = Vec::with_capacity(merged.len() + n);
        let mut dst = Vec::with_capacity(merged.len() + n);
        let mut edge_feat = Tensor::zeros(merged.len() + n, 2);
        let mut weighted: Vec<(usize, usize, f64)> = Vec::with_capacity(merged.len());
        for (i, e) in merged.iter().enumerate() {
            src.push(e.src);
            dst.push(e.dst);
            edge_feat.set(i, 0, log_scale_weight(e.total_value) as f32);
            edge_feat.set(i, 1, (1.0 + e.count as f64).ln() as f32);
            weighted.push((e.src, e.dst, log_scale_weight(e.total_value)));
        }
        // Self-loops with zero edge features (the centre-node alignment of
        // Eq. 6 uses r_ii = 0 since no self-transactions are merged).
        for v in 0..n {
            src.push(v);
            dst.push(v);
        }
        let gsg_adj = gcn_norm_adjacency(n, &weighted);
        let slice_adj: Vec<Tensor> = graph
            .time_slices(t_slices)
            .into_iter()
            .map(|s| {
                let edges: Vec<(usize, usize, f64)> =
                    s.edges.iter().map(|&(u, v, w)| (u, v, log_scale_weight(w))).collect();
                gcn_norm_adjacency(n, &edges)
            })
            .collect();
        let gsg_adj_csr = Arc::new(Csr::from_dense(&gsg_adj));
        let slice_adj_csr = slice_adj.iter().map(|a| Arc::new(Csr::from_dense(a))).collect();
        Self {
            n,
            x,
            src: Arc::new(src),
            dst: Arc::new(dst),
            edge_feat,
            gsg_adj,
            slice_adj,
            gsg_adj_csr,
            slice_adj_csr,
            center_seq: build_center_seq(graph),
            label: graph.label,
        }
    }

    /// Lower using the standard 15-dim deep feature pipeline.
    pub fn from_subgraph(graph: &Subgraph, t_slices: usize) -> Self {
        Self::new(graph, features::node_features(graph), t_slices)
    }

    /// Lower with constant (all-ones, 1-dim) node features — the
    /// "w/o node feature" ablation rows of Table III.
    pub fn without_node_features(graph: &Subgraph, t_slices: usize) -> Self {
        Self::new(graph, Tensor::ones(graph.n(), 1), t_slices)
    }

    /// Number of edges including self-loops.
    pub fn n_edges(&self) -> usize {
        self.src.len()
    }

    /// Edge list without the trailing self-loops.
    pub fn real_edges(&self) -> Vec<(usize, usize)> {
        let real = self.src.len() - self.n;
        (0..real).map(|i| (self.src[i], self.dst[i])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eth_graph::{AccountKind, LocalTx};

    fn graph() -> Subgraph {
        Subgraph::from_parts(
            vec![0, 1, 2],
            vec![AccountKind::Eoa; 3],
            vec![
                LocalTx {
                    src: 0,
                    dst: 1,
                    value: 3.0,
                    timestamp: 0,
                    fee: 0.0,
                    contract_call: false,
                },
                LocalTx {
                    src: 0,
                    dst: 1,
                    value: 1.0,
                    timestamp: 10,
                    fee: 0.0,
                    contract_call: false,
                },
                LocalTx {
                    src: 2,
                    dst: 0,
                    value: 2.0,
                    timestamp: 20,
                    fee: 0.0,
                    contract_call: false,
                },
            ],
            Some(1),
        )
    }

    #[test]
    fn edges_include_self_loops_at_end() {
        let g = graph();
        let t = GraphTensors::from_subgraph(&g, 4);
        assert_eq!(t.n_edges(), 2 + 3); // two merged edges + three loops
        assert_eq!(t.real_edges(), vec![(0, 1), (2, 0)]);
        for i in 0..3 {
            assert_eq!(t.src[2 + i], i);
            assert_eq!(t.dst[2 + i], i);
        }
    }

    #[test]
    fn edge_features_are_log_scaled_w_and_t() {
        let g = graph();
        let t = GraphTensors::from_subgraph(&g, 4);
        // Edge (0,1): w = 4.0, count = 2.
        assert!((t.edge_feat.get(0, 0) - (5.0f32).ln()).abs() < 1e-5);
        assert!((t.edge_feat.get(0, 1) - (3.0f32).ln()).abs() < 1e-5);
        // Self-loop features are zero.
        assert_eq!(t.edge_feat.get(2, 0), 0.0);
    }

    #[test]
    fn slice_adjacencies_cover_all_slices() {
        let g = graph();
        let t = GraphTensors::from_subgraph(&g, 4);
        assert_eq!(t.slice_adj.len(), 4);
        for a in &t.slice_adj {
            assert_eq!(a.shape(), (3, 3));
            // Normalised adjacency always has positive diagonal.
            for i in 0..3 {
                assert!(a.get(i, i) > 0.0);
            }
        }
    }

    #[test]
    fn center_seq_is_time_ordered_and_direction_signed() {
        let g = graph();
        let t = GraphTensors::from_subgraph(&g, 2);
        // Centre (node 0) participates in all three transactions.
        assert_eq!(t.center_seq.shape(), (3, 5));
        // Direction column: first two are outgoing (+1), last incoming (-1).
        assert_eq!(t.center_seq.get(0, 1), 1.0);
        assert_eq!(t.center_seq.get(2, 1), -1.0);
        // Normalised time is monotone.
        assert!(t.center_seq.get(0, 3) <= t.center_seq.get(2, 3));
    }

    #[test]
    fn csr_views_match_dense_adjacencies_bitwise() {
        let g = graph();
        let t = GraphTensors::from_subgraph(&g, 4);
        assert_eq!(t.gsg_adj_csr.to_dense().to_bits_vec(), t.gsg_adj.to_bits_vec());
        assert_eq!(t.slice_adj_csr.len(), t.slice_adj.len());
        for (c, d) in t.slice_adj_csr.iter().zip(&t.slice_adj) {
            assert_eq!(c.to_dense().to_bits_vec(), d.to_bits_vec());
        }
    }

    #[test]
    fn featureless_variant_has_one_dim() {
        let g = graph();
        let t = GraphTensors::without_node_features(&g, 2);
        assert_eq!(t.x.shape(), (3, 1));
        assert!(t.x.data().iter().all(|&v| v == 1.0));
    }
}
