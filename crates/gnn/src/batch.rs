//! Mini-batch packing: many subgraphs → one block-diagonal problem.
//!
//! Training used to build one tape per account per mini-batch; the fixed
//! per-tape overhead (leaf re-insertion, small GEMMs, pool traffic) dominated
//! the encode phase. These packers concatenate a mini-batch of subgraphs into
//! a single node-feature matrix plus block-diagonal adjacency structure so
//! each encoder layer runs once per batch:
//!
//! * dense weight matmuls become one fused `(Σn, d) @ (d, d')` product —
//!   row-independent, so every output row is bit-identical to the
//!   per-account product;
//! * sparse propagation uses [`Csr::block_diagonal`], whose per-row kernels
//!   never cross block boundaries (see the ordering contract on `Csr`);
//! * graph-level reductions (pooling, graph attention, DiffPool) use the
//!   tape's segment ops, each pinned bit-identical to the per-graph op chain
//!   it fuses.
//!
//! The net contract, relied on by `tests/batch_equivalence.rs`: under the
//! Strict numerics profile, batched forward outputs are bit-identical per
//! account to the per-account path, and gradients on the packed input leaf
//! decompose row-for-row into the per-account gradients.

use crate::augment::AugmentedView;
use crate::graphdata::GraphTensors;
use std::sync::Arc;
use tensor::{Csr, Tensor};

/// Borrowed view of one subgraph's GSG inputs. Lets [`GsgBatch::pack`]
/// accept both original graphs and augmented views.
pub struct GsgItem<'a> {
    pub n: usize,
    pub x: &'a Tensor,
    pub src: &'a [usize],
    pub dst: &'a [usize],
    pub edge_feat: &'a Tensor,
}

impl<'a> From<&'a GraphTensors> for GsgItem<'a> {
    fn from(g: &'a GraphTensors) -> Self {
        Self { n: g.n, x: &g.x, src: &g.src, dst: &g.dst, edge_feat: &g.edge_feat }
    }
}

impl<'a> From<&'a AugmentedView> for GsgItem<'a> {
    fn from(v: &'a AugmentedView) -> Self {
        Self { n: v.n, x: &v.x, src: &v.src, dst: &v.dst, edge_feat: &v.edge_feat }
    }
}

/// A mini-batch of subgraphs packed for `GsgEncoder::forward_batch`.
///
/// Node rows of graph `g` occupy `offsets[g]..offsets[g + 1]` of `x`; edge
/// endpoints are pre-shifted into that global row space. The `all_*` index
/// vectors describe the graph-attention block's `[c_g ‖ h_g]` row layout:
/// graph `g`'s pooled row `c_g` sits at `all_offsets[g]` (i.e.
/// `offsets[g] + g`), followed by its node rows.
pub struct GsgBatch {
    /// Node-row offsets per graph, length `B + 1`.
    pub offsets: Arc<Vec<usize>>,
    /// Packed node features, `(Σn, d_in)`.
    pub x: Tensor,
    /// Edge sources in global node rows (self-loops included, per graph).
    pub src: Arc<Vec<usize>>,
    /// Edge destinations in global node rows.
    pub dst: Arc<Vec<usize>>,
    /// Packed edge features, `(Σe, 2)`.
    pub edge_feat: Tensor,
    /// Row offsets of each graph's `[c_g ‖ h_g]` segment, length `B + 1`.
    pub all_offsets: Arc<Vec<usize>>,
    /// Permutation building the packed `all` matrix from
    /// `concat_rows(c_batch, h)`: graph `g` contributes row `g` (its pooled
    /// `c_g`) then rows `B + offsets[g] .. B + offsets[g + 1]`.
    pub all_perm: Arc<Vec<usize>>,
    /// Graph id per `all` row (segment ids for the graph-attention softmax).
    pub all_seg: Arc<Vec<usize>>,
    /// Per `all` row, the row index of its graph's `c_g` (for `c_rep`).
    pub c_rep_idx: Arc<Vec<usize>>,
    /// Global node row of each graph's centre account (= `offsets[g]`,
    /// because lowering always places the centre at local node 0).
    pub center_rows: Arc<Vec<usize>>,
}

impl GsgBatch {
    /// Number of graphs in the batch.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total packed node count.
    pub fn n_total(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// Total packed edge count (self-loops included).
    pub fn e_total(&self) -> usize {
        self.src.len()
    }

    pub fn pack<'a>(items: impl IntoIterator<Item = GsgItem<'a>>) -> Self {
        let items: Vec<GsgItem<'a>> = items.into_iter().collect();
        assert!(!items.is_empty(), "cannot pack an empty GSG batch");
        let b = items.len();
        let d = items[0].x.cols();
        let d_edge = items[0].edge_feat.cols();

        let mut offsets = Vec::with_capacity(b + 1);
        offsets.push(0usize);
        let mut x_data = Vec::new();
        let mut src = Vec::new();
        let mut dst = Vec::new();
        let mut edge_data = Vec::new();
        let mut all_offsets = Vec::with_capacity(b + 1);
        let mut all_perm = Vec::new();
        let mut all_seg = Vec::new();
        let mut c_rep_idx = Vec::new();
        let mut center_rows = Vec::with_capacity(b);

        for (g, item) in items.iter().enumerate() {
            let base = *offsets.last().unwrap();
            assert_eq!(item.x.rows(), item.n, "node feature rows must match n");
            assert_eq!(item.x.cols(), d, "node feature widths must agree across the batch");
            assert_eq!(item.edge_feat.cols(), d_edge, "edge feature widths must agree");
            assert_eq!(item.src.len(), item.dst.len(), "edge endpoint lists must align");
            assert_eq!(item.edge_feat.rows(), item.src.len(), "edge features must align");
            x_data.extend_from_slice(item.x.data());
            edge_data.extend_from_slice(item.edge_feat.data());
            src.extend(item.src.iter().map(|&s| base + s));
            dst.extend(item.dst.iter().map(|&t| base + t));
            center_rows.push(base);
            // `all` layout for graph g: [c_g, h_{base}, .., h_{base + n - 1}].
            let c_row = all_perm.len();
            all_offsets.push(c_row);
            all_perm.push(g);
            all_perm.extend((base..base + item.n).map(|r| b + r));
            all_seg.extend(std::iter::repeat_n(g, item.n + 1));
            c_rep_idx.extend(std::iter::repeat_n(c_row, item.n + 1));
            offsets.push(base + item.n);
        }
        all_offsets.push(all_perm.len());

        let n_total = *offsets.last().unwrap();
        let e_total = src.len();
        Self {
            offsets: Arc::new(offsets),
            x: Tensor::from_vec(n_total, d, x_data),
            src: Arc::new(src),
            dst: Arc::new(dst),
            edge_feat: Tensor::from_vec(e_total, d_edge, edge_data),
            all_offsets: Arc::new(all_offsets),
            all_perm: Arc::new(all_perm),
            all_seg: Arc::new(all_seg),
            c_rep_idx: Arc::new(c_rep_idx),
            center_rows: Arc::new(center_rows),
        }
    }
}

/// A mini-batch of subgraphs packed for `LdgEncoder::forward_batch`.
///
/// Each time slice's adjacency becomes one block-diagonal CSR over the packed
/// node rows; per-graph slice lists shorter than `t_slices` repeat their last
/// slice, mirroring the per-account `.get(t).unwrap_or(last)` fallback.
pub struct LdgBatch {
    /// Node-row offsets per graph, length `B + 1`.
    pub offsets: Arc<Vec<usize>>,
    /// Packed node features, `(Σn, d_in)`.
    pub x: Tensor,
    /// One block-diagonal adjacency per time slice, length `t_slices`.
    pub slice_csr: Vec<Arc<Csr>>,
    /// Global node row of each graph's centre account.
    pub center_rows: Arc<Vec<usize>>,
    /// Permutation turning the slice-major pooled stack (row `t·B + g`) into
    /// the graph-major layout (row `g·T + t`) used by the time attention.
    pub stack_perm: Arc<Vec<usize>>,
    /// Per graph-major stack row, its slice index `t` (tiles the transposed
    /// `(T, 1)` attention weights across graphs).
    pub alpha_tile: Arc<Vec<usize>>,
    /// Uniform offsets `[0, T, 2T, ..]` segmenting the graph-major stack.
    pub time_offsets: Arc<Vec<usize>>,
    /// Total non-zeros across all packed slice adjacencies (for gauges).
    pub nnz_total: usize,
}

impl LdgBatch {
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn n_total(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    pub fn pack(graphs: &[&GraphTensors], t_slices: usize) -> Self {
        assert!(!graphs.is_empty(), "cannot pack an empty LDG batch");
        assert!(t_slices > 0, "LDG needs at least one time slice");
        let b = graphs.len();
        let d = graphs[0].x.cols();

        let mut offsets = Vec::with_capacity(b + 1);
        offsets.push(0usize);
        let mut x_data = Vec::new();
        let mut center_rows = Vec::with_capacity(b);
        for g in graphs {
            assert!(!g.slice_adj_csr.is_empty(), "LDG needs time slices");
            assert_eq!(g.x.cols(), d, "node feature widths must agree across the batch");
            let base = *offsets.last().unwrap();
            x_data.extend_from_slice(g.x.data());
            center_rows.push(base);
            offsets.push(base + g.n);
        }
        let n_total = *offsets.last().unwrap();

        let mut nnz_total = 0usize;
        let slice_csr: Vec<Arc<Csr>> = (0..t_slices)
            .map(|t| {
                let blocks: Vec<&Csr> = graphs
                    .iter()
                    .map(|g| {
                        g.slice_adj_csr
                            .get(t)
                            .unwrap_or_else(|| g.slice_adj_csr.last().unwrap())
                            .as_ref()
                    })
                    .collect();
                let packed = Csr::block_diagonal(&blocks);
                nnz_total += packed.nnz();
                Arc::new(packed)
            })
            .collect();

        let mut stack_perm = Vec::with_capacity(b * t_slices);
        let mut alpha_tile = Vec::with_capacity(b * t_slices);
        for g in 0..b {
            for t in 0..t_slices {
                stack_perm.push(t * b + g);
                alpha_tile.push(t);
            }
        }
        let time_offsets = (0..=b).map(|g| g * t_slices).collect();

        Self {
            offsets: Arc::new(offsets),
            x: Tensor::from_vec(n_total, d, x_data),
            slice_csr,
            center_rows: Arc::new(center_rows),
            stack_perm: Arc::new(stack_perm),
            alpha_tile: Arc::new(alpha_tile),
            time_offsets: Arc::new(time_offsets),
            nnz_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::{LdgConfig, LdgEncoder};
    use crate::hier::{GsgConfig, GsgEncoder};
    use eth_graph::{AccountKind, LocalTx, Subgraph};
    use nn::{Ctx, ParamStore};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::{Tape, Tensor};

    fn assert_rows_bitwise(
        per: &Tensor,
        per_row: usize,
        batched: &Tensor,
        b_row: usize,
        what: &str,
    ) {
        assert_eq!(per.cols(), batched.cols(), "{what}: width mismatch");
        for j in 0..per.cols() {
            assert_eq!(
                per.get(per_row, j).to_bits(),
                batched.get(b_row, j).to_bits(),
                "{what}: row {b_row} col {j} differs"
            );
        }
    }

    fn toy(n: usize, label: usize) -> GraphTensors {
        let g = Subgraph::from_parts(
            (0..n).collect(),
            vec![AccountKind::Eoa; n],
            (0..2 * n)
                .map(|i| LocalTx {
                    src: i % n,
                    dst: (i + 1) % n,
                    value: 1.0 + i as f64,
                    timestamp: (i as u64) * 700,
                    fee: 0.001,
                    contract_call: i % 3 == 0,
                })
                .collect(),
            Some(label),
        );
        GraphTensors::from_subgraph(&g, 4)
    }

    #[test]
    fn gsg_pack_layout() {
        let g0 = toy(3, 0);
        let g1 = toy(5, 1);
        let batch = GsgBatch::pack([GsgItem::from(&g0), GsgItem::from(&g1)]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.offsets.as_slice(), &[0, 3, 8]);
        assert_eq!(batch.n_total(), 8);
        assert_eq!(batch.x.rows(), 8);
        assert_eq!(batch.e_total(), g0.src.len() + g1.src.len());
        // Graph 1's edges are shifted by graph 0's node count.
        assert!(batch.src[g0.src.len()..].iter().all(|&s| (3..8).contains(&s)));
        // `all` rows: [c0, 3 nodes, c1, 5 nodes]; c rows at offsets[g] + g.
        assert_eq!(batch.all_offsets.as_slice(), &[0, 4, 10]);
        assert_eq!(batch.all_perm.as_slice(), &[0, 2, 3, 4, 1, 5, 6, 7, 8, 9]);
        assert_eq!(batch.all_seg.as_slice(), &[0, 0, 0, 0, 1, 1, 1, 1, 1, 1]);
        assert_eq!(batch.c_rep_idx.as_slice(), &[0, 0, 0, 0, 4, 4, 4, 4, 4, 4]);
        assert_eq!(batch.center_rows.as_slice(), &[0, 3]);
    }

    #[test]
    fn ldg_pack_repeats_last_slice_and_counts_nnz() {
        let g0 = toy(3, 0);
        let g1 = toy(4, 1);
        let t = g0.slice_adj_csr.len().max(g1.slice_adj_csr.len()) + 2;
        let batch = LdgBatch::pack(&[&g0, &g1], t);
        assert_eq!(batch.slice_csr.len(), t);
        for csr in &batch.slice_csr {
            assert_eq!(csr.shape(), (7, 7));
        }
        // Slices beyond each graph's list repeat its last adjacency: graph 0's
        // block of the final packed slice equals its own last slice.
        let last = batch.slice_csr[t - 1].to_dense();
        let g0_last = g0.slice_adj_csr.last().unwrap().to_dense();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(last.get(r, c).to_bits(), g0_last.get(r, c).to_bits());
            }
        }
        assert_eq!(batch.nnz_total, batch.slice_csr.iter().map(|c| c.nnz()).sum::<usize>());
        assert_eq!(batch.stack_perm.len(), 2 * t);
        assert_eq!(batch.stack_perm[0], 0); // (g=0, t=0) -> slice-major row 0
        assert_eq!(batch.stack_perm[t], 1); // (g=1, t=0) -> slice-major row 1
        assert_eq!(batch.alpha_tile[t - 1], t - 1);
        assert_eq!(batch.time_offsets.as_slice(), &[0, t, 2 * t]);
    }

    #[test]
    fn gsg_forward_batch_matches_per_graph_bitwise() {
        let graphs = [toy(3, 0), toy(5, 1), toy(4, 0), toy(2, 1)];
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let cfg = GsgConfig { hidden: 8, d_out: 4, ..Default::default() };
        let enc = GsgEncoder::new(&mut store, &mut rng, cfg);

        let mut tape = Tape::new();
        let mut ctx = Ctx::new(&store);
        let outs: Vec<_> =
            graphs.iter().map(|g| enc.forward(&mut tape, &mut ctx, &store, g)).collect();

        let mut tape_b = Tape::new();
        let mut ctx_b = Ctx::new(&store);
        let batch = GsgBatch::pack(graphs.iter().map(GsgItem::from));
        let out_b = enc.forward_batch(&mut tape_b, &mut ctx_b, &store, &batch);

        for (g, o) in outs.iter().enumerate() {
            assert_rows_bitwise(tape.value(o.logits), 0, tape_b.value(out_b.logits), g, "logits");
            assert_rows_bitwise(
                tape.value(o.embedding),
                0,
                tape_b.value(out_b.embedding),
                g,
                "embedding",
            );
            assert_rows_bitwise(
                tape.value(o.projection),
                0,
                tape_b.value(out_b.projection),
                g,
                "projection",
            );
        }
    }

    #[test]
    fn ldg_forward_batch_matches_per_graph_bitwise() {
        let graphs = [toy(4, 0), toy(3, 1), toy(6, 0)];
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let cfg = LdgConfig {
            hidden: 8,
            t_slices: 5,
            d_out: 4,
            pool_clusters: [6, 3, 1],
            pool_layers: 2,
            ..Default::default()
        };
        let enc = LdgEncoder::new(&mut store, &mut rng, cfg);

        let mut tape = Tape::new();
        let mut ctx = Ctx::new(&store);
        let outs: Vec<_> =
            graphs.iter().map(|g| enc.forward(&mut tape, &mut ctx, &store, g)).collect();

        let mut tape_b = Tape::new();
        let mut ctx_b = Ctx::new(&store);
        let refs: Vec<&GraphTensors> = graphs.iter().collect();
        let batch = LdgBatch::pack(&refs, 5);
        let out_b = enc.forward_batch(&mut tape_b, &mut ctx_b, &store, &batch);

        for (g, o) in outs.iter().enumerate() {
            assert_rows_bitwise(tape.value(o.logits), 0, tape_b.value(out_b.logits), g, "logits");
            assert_rows_bitwise(
                tape.value(o.embedding),
                0,
                tape_b.value(out_b.embedding),
                g,
                "embedding",
            );
        }
    }
}
