//! The global static account transaction encoding module (Section IV-A):
//! node feature alignment (Eq. 6), a stack of node-level graph attention
//! layers (Eqs. 7-9) and graph-level attention pooling (Eqs. 10-13).

use crate::batch::GsgBatch;
use crate::graphdata::GraphTensors;
use nn::{Activation, Ctx, Linear, ParamId, ParamStore};
use rand::Rng;
use std::sync::Arc;
use tensor::{Tape, Tensor, Var};

use crate::layers::GatLayer;

/// Configuration of the GSG encoder.
#[derive(Clone, Copy, Debug)]
pub struct GsgConfig {
    /// Input node-feature dimension (15 for the deep features).
    pub d_in: usize,
    /// Hidden width (paper: 128).
    pub hidden: usize,
    /// Number of node-level GAT layers (paper: 2).
    pub layers: usize,
    /// Attention heads per layer (hidden must be divisible by heads).
    pub heads: usize,
    /// Output embedding width.
    pub d_out: usize,
    /// Number of classes for the logits head.
    pub n_classes: usize,
    /// Concatenate the centre account's final representation to the graph
    /// embedding before the heads (on by default; the subgraph label is a
    /// property of its centre). Disable for the design ablation.
    pub use_center: bool,
}

impl Default for GsgConfig {
    fn default() -> Self {
        Self {
            d_in: 15,
            hidden: 64,
            layers: 2,
            heads: 2,
            d_out: 32,
            n_classes: 2,
            use_center: true,
        }
    }
}

/// Hierarchical attention encoder for the Global Static Graph.
pub struct GsgEncoder {
    pub config: GsgConfig,
    /// Θx of Eq. 6: aligns `[x_j || r_ij]` to the hidden width.
    align: Linear,
    gats: Vec<GatLayer>,
    /// Θs of Eq. 11: graph-level attention scores from `[c || H_j]`.
    s_attn: ParamId,
    /// Θg of Eq. 13.
    theta_g: ParamId,
    /// Classification head producing the GSG's raw prediction value `g`.
    head: Linear,
    /// Projection head for the contrastive objective.
    proj: Linear,
}

/// Output of one GSG forward pass.
pub struct GsgOutput {
    /// Graph embedding `g` of Eq. 13, shape `(1, d_out)`.
    pub embedding: Var,
    /// Class logits, shape `(1, n_classes)`.
    pub logits: Var,
    /// Contrastive projection, shape `(1, d_out)`.
    pub projection: Var,
}

impl GsgEncoder {
    pub fn new(store: &mut ParamStore, rng: &mut impl Rng, config: GsgConfig) -> Self {
        assert!(config.hidden.is_multiple_of(config.heads), "hidden must divide by heads");
        let per_head = config.hidden / config.heads;
        let align = Linear::new(
            store,
            rng,
            "gsg.align",
            config.d_in + 2,
            config.hidden,
            Activation::LeakyRelu(0.2),
        );
        let gats = (0..config.layers)
            .map(|l| {
                GatLayer::new(
                    store,
                    rng,
                    &format!("gsg.gat{l}"),
                    config.hidden,
                    per_head,
                    config.heads,
                )
            })
            .collect();
        let s_attn = store.xavier("gsg.s_attn", 2 * config.hidden, 1, rng);
        let theta_g = store.xavier("gsg.theta_g", config.hidden, config.d_out, rng);
        let emb_width = if config.use_center { 2 * config.d_out } else { config.d_out };
        let head =
            Linear::new(store, rng, "gsg.head", emb_width, config.n_classes, Activation::None);
        let proj = Linear::new(store, rng, "gsg.proj", emb_width, config.d_out, Activation::None);
        Self { config, align, gats, s_attn, theta_g, head, proj }
    }

    /// Encode a graph given explicit tensors (used both for the original
    /// graph and for augmented views).
    #[allow(clippy::too_many_arguments)]
    pub fn forward_parts(
        &self,
        tape: &mut Tape,
        ctx: &mut Ctx,
        store: &ParamStore,
        n: usize,
        x: &Tensor,
        src: &Arc<Vec<usize>>,
        dst: &Arc<Vec<usize>>,
        edge_feat: &Tensor,
    ) -> GsgOutput {
        let xv = tape.constant_copy(x);
        self.forward_parts_with_x(tape, ctx, store, n, xv, src, dst, edge_feat)
    }

    /// [`GsgEncoder::forward_parts`] with the node features already on the
    /// tape. Passing a gradient-carrying leaf instead of a constant lets
    /// callers (e.g. the batch-equivalence tests) differentiate with respect
    /// to the inputs.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_parts_with_x(
        &self,
        tape: &mut Tape,
        ctx: &mut Ctx,
        store: &ParamStore,
        n: usize,
        xv: Var,
        src: &Arc<Vec<usize>>,
        dst: &Arc<Vec<usize>>,
        edge_feat: &Tensor,
    ) -> GsgOutput {
        let ef = tape.constant_copy(edge_feat);

        // Eq. 6 — alignment. Per-edge source features fused with the edge
        // features; per-node self representations fused with zeros.
        let x_src = tape.gather_rows(xv, src.clone());
        let edge_in = tape.concat_cols(x_src, ef);
        let aligned_edges = self.align.forward(tape, ctx, store, edge_in);
        let zeros = tape.constant(Tensor::zeros(n, 2));
        let node_in = tape.concat_cols(xv, zeros);
        let mut h = self.align.forward(tape, ctx, store, node_in);

        // Eqs. 7-9 — node-level attention. The first layer consumes the
        // aligned per-edge neighbour features; deeper layers gather from h.
        for (l, gat) in self.gats.iter().enumerate() {
            let src_h = if l == 0 { Some(aligned_edges) } else { None };
            h = gat.forward(tape, ctx, store, h, src_h, src, dst, n);
        }

        // Eq. 10 — initial subgraph representation by global max pooling.
        let c = tape.max_pool_rows(h);

        // Eqs. 11-12 — graph-level attention over nodes ∪ {c}.
        let s_attn = ctx.var(tape, store, self.s_attn);
        let all = tape.concat_rows(c, h); // row 0 is c
        let c_rep = tape.gather_rows(all, Arc::new(vec![0; n + 1]));
        let cat = tape.concat_cols(c_rep, all);
        let scores = tape.matmul(cat, s_attn);
        let scores = tape.leaky_relu(scores, 0.2);
        let beta = tape.segment_softmax(scores, Arc::new(vec![0; n + 1]));

        // Eq. 13 — g = Elu(βᵀ (all Θg)).
        let theta_g = ctx.var(tape, store, self.theta_g);
        let transformed = tape.matmul(all, theta_g);
        let beta_t = tape.transpose(beta);
        let g = tape.matmul(beta_t, transformed);
        let g = tape.elu(g, 1.0);

        // The subgraph is centred on the target account (local node 0);
        // its final h-hop representation H⁰ʰ "represents the embedded
        // features of the target node" (Section IV-A2). Classify from the
        // graph embedding concatenated with the centre embedding.
        let combined = if self.config.use_center {
            let center_h = tape.gather_rows(h, Arc::new(vec![0]));
            let center_e = tape.matmul(center_h, theta_g);
            let center_e = tape.elu(center_e, 1.0);
            tape.concat_cols(g, center_e)
        } else {
            g
        };

        let logits = self.head.forward(tape, ctx, store, combined);
        let projection = self.proj.forward(tape, ctx, store, combined);
        GsgOutput { embedding: combined, logits, projection }
    }

    /// Encode a lowered subgraph.
    pub fn forward(
        &self,
        tape: &mut Tape,
        ctx: &mut Ctx,
        store: &ParamStore,
        graph: &GraphTensors,
    ) -> GsgOutput {
        self.forward_parts(
            tape,
            ctx,
            store,
            graph.n,
            &graph.x,
            &graph.src,
            &graph.dst,
            &graph.edge_feat,
        )
    }

    /// Encode a packed mini-batch in one pass: row `g` of every output is
    /// bit-identical to what [`GsgEncoder::forward`] produces for graph `g`
    /// alone (under the Strict numerics profile — Fast relaxes the dense
    /// GEMMs).
    pub fn forward_batch(
        &self,
        tape: &mut Tape,
        ctx: &mut Ctx,
        store: &ParamStore,
        batch: &GsgBatch,
    ) -> GsgOutput {
        let xv = tape.constant_copy(&batch.x);
        self.forward_batch_with_x(tape, ctx, store, batch, xv)
    }

    /// [`GsgEncoder::forward_batch`] with the packed node features already on
    /// the tape (gradient-carrying when the caller needs input gradients).
    ///
    /// Every step mirrors [`GsgEncoder::forward_parts_with_x`] op for op:
    /// dense layers are row-independent, message passing uses the pre-shifted
    /// global edge lists, and the per-graph reductions become segment ops
    /// (each pinned bit-identical to the per-graph chain it fuses — see the
    /// op docs on `Tape`).
    pub fn forward_batch_with_x(
        &self,
        tape: &mut Tape,
        ctx: &mut Ctx,
        store: &ParamStore,
        batch: &GsgBatch,
        xv: Var,
    ) -> GsgOutput {
        let n_total = batch.n_total();
        let ef = tape.constant_copy(&batch.edge_feat);

        // Eq. 6 — alignment, fused across the whole batch.
        let x_src = tape.gather_rows(xv, batch.src.clone());
        let edge_in = tape.concat_cols(x_src, ef);
        let aligned_edges = self.align.forward(tape, ctx, store, edge_in);
        let zeros = tape.constant(Tensor::zeros(n_total, 2));
        let node_in = tape.concat_cols(xv, zeros);
        let mut h = self.align.forward(tape, ctx, store, node_in);

        // Eqs. 7-9 — the per-graph GAT code runs unchanged on the global
        // edge lists: destinations never cross graph boundaries, so each
        // softmax segment and scatter row matches the per-graph pass.
        for (l, gat) in self.gats.iter().enumerate() {
            let src_h = if l == 0 { Some(aligned_edges) } else { None };
            h = gat.forward(tape, ctx, store, h, src_h, &batch.src, &batch.dst, n_total);
        }

        // Eq. 10 — per-graph global max pooling, `(B, hidden)`.
        let c = tape.segment_max_pool_rows(h, batch.offsets.clone());

        // Eqs. 11-12 — graph-level attention. `all` interleaves each graph's
        // pooled row with its node rows (graph g's c_g at `all_offsets[g]`),
        // reproducing the per-graph `concat_rows(c, h)` layout.
        let s_attn = ctx.var(tape, store, self.s_attn);
        let stacked = tape.concat_rows(c, h);
        let all = tape.gather_rows(stacked, batch.all_perm.clone());
        let c_rep = tape.gather_rows(all, batch.c_rep_idx.clone());
        let cat = tape.concat_cols(c_rep, all);
        let scores = tape.matmul(cat, s_attn);
        let scores = tape.leaky_relu(scores, 0.2);
        let beta = tape.segment_softmax(scores, batch.all_seg.clone());

        // Eq. 13 — g = Elu(βᵀ (all Θg)) per graph; `seg_matmul_tn` replays
        // the per-graph transpose + matmul bit for bit.
        let theta_g = ctx.var(tape, store, self.theta_g);
        let transformed = tape.matmul(all, theta_g);
        let g = tape.seg_matmul_tn(beta, transformed, batch.all_offsets.clone());
        let g = tape.elu(g, 1.0);

        let combined = if self.config.use_center {
            let center_h = tape.gather_rows(h, batch.center_rows.clone());
            let center_e = tape.matmul(center_h, theta_g);
            let center_e = tape.elu(center_e, 1.0);
            tape.concat_cols(g, center_e)
        } else {
            g
        };

        let logits = self.head.forward(tape, ctx, store, combined);
        let projection = self.proj.forward(tape, ctx, store, combined);
        GsgOutput { embedding: combined, logits, projection }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eth_graph::{AccountKind, LocalTx, Subgraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_graph(label: usize) -> GraphTensors {
        let g = Subgraph::from_parts(
            vec![0, 1, 2, 3],
            vec![AccountKind::Eoa; 4],
            vec![
                LocalTx {
                    src: 0,
                    dst: 1,
                    value: 5.0,
                    timestamp: 10,
                    fee: 0.01,
                    contract_call: false,
                },
                LocalTx {
                    src: 1,
                    dst: 2,
                    value: 2.0,
                    timestamp: 20,
                    fee: 0.01,
                    contract_call: false,
                },
                LocalTx {
                    src: 3,
                    dst: 0,
                    value: 9.0,
                    timestamp: 30,
                    fee: 0.02,
                    contract_call: false,
                },
                LocalTx {
                    src: 2,
                    dst: 0,
                    value: 1.0,
                    timestamp: 45,
                    fee: 0.01,
                    contract_call: true,
                },
            ],
            Some(label),
        );
        GraphTensors::from_subgraph(&g, 3)
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let enc = GsgEncoder::new(&mut store, &mut rng, GsgConfig::default());
        let g = toy_graph(1);
        let mut tape = Tape::new();
        let mut ctx = Ctx::new(&store);
        let out = enc.forward(&mut tape, &mut ctx, &store, &g);
        assert_eq!(tape.value(out.embedding).shape(), (1, 64));
        assert_eq!(tape.value(out.logits).shape(), (1, 2));
        assert_eq!(tape.value(out.projection).shape(), (1, 32));
        assert!(tape.value(out.logits).all_finite());
    }

    #[test]
    fn gradients_flow_to_every_parameter_family() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let enc = GsgEncoder::new(&mut store, &mut rng, GsgConfig::default());
        let g = toy_graph(1);
        let mut tape = Tape::new();
        let mut ctx = Ctx::new(&store);
        let out = enc.forward(&mut tape, &mut ctx, &store, &g);
        let loss = tape.cross_entropy(out.logits, Arc::new(vec![1]));
        tape.backward(loss);
        ctx.accumulate_grads(&tape, &mut store);
        // Alignment, attention, pooling and head parameters all get grads.
        for name in ["gsg.align.w", "gsg.gat0.h0.w", "gsg.s_attn", "gsg.theta_g", "gsg.head.w"] {
            let id = store.find(name).unwrap_or_else(|| panic!("param {name} not found"));
            let norm: f32 = store.grad(id).data().iter().map(|x| x * x).sum();
            assert!(norm > 0.0, "no gradient for {name}");
        }
    }

    #[test]
    fn training_separates_two_toy_classes() {
        // Class 0: chain topology with small values; class 1: star with a
        // huge hub. The encoder should fit these two graphs perfectly.
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let cfg = GsgConfig { hidden: 16, heads: 2, d_out: 8, ..Default::default() };
        let enc = GsgEncoder::new(&mut store, &mut rng, cfg);
        let g1 = toy_graph(1);
        let g0 = {
            let g = Subgraph::from_parts(
                vec![0, 1],
                vec![AccountKind::Eoa; 2],
                vec![LocalTx {
                    src: 0,
                    dst: 1,
                    value: 0.1,
                    timestamp: 5,
                    fee: 0.0,
                    contract_call: false,
                }],
                Some(0),
            );
            GraphTensors::from_subgraph(&g, 3)
        };
        let mut opt = nn::Adam::new(0.01);
        let mut last = f32::MAX;
        for _ in 0..60 {
            store.zero_grad();
            let mut tape = Tape::new();
            let mut ctx = Ctx::new(&store);
            let o1 = enc.forward(&mut tape, &mut ctx, &store, &g1);
            let o0 = enc.forward(&mut tape, &mut ctx, &store, &g0);
            let logits = tape.concat_rows(o1.logits, o0.logits);
            let loss = tape.cross_entropy(logits, Arc::new(vec![1, 0]));
            last = tape.value(loss).item();
            tape.backward(loss);
            ctx.accumulate_grads(&tape, &mut store);
            opt.step(&mut store);
        }
        assert!(last < 0.1, "GSG failed to fit toy pair: loss {last}");
    }
}
