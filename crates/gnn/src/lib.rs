//! # gnn — graph neural networks for the double-graph pipeline
//!
//! Hand-rolled message passing on the `tensor` autodiff tape:
//!
//! * [`GraphTensors`] — subgraph → tensors lowering (GSG edges with `[w, t]`
//!   features, per-slice LDG adjacencies),
//! * [`layers`] — GCN / GAT / GIN / GraphSAGE / APPNP building blocks,
//! * [`GsgEncoder`] — the global static encoder: alignment (Eq. 6),
//!   node-level attention (Eqs. 7-9), graph-level attention pooling
//!   (Eqs. 10-13),
//! * [`LdgEncoder`] — the local dynamic encoder: GCN + GRU evolution
//!   (Eqs. 14-18), DiffPool (Eqs. 19-21), time-slice read-out (Eqs. 22-23),
//! * [`augment`] / [`nt_xent`] — adaptive augmentation and the contrastive
//!   objective (Section IV-A3),
//! * [`GsgBatch`] / [`LdgBatch`] — block-diagonal mini-batch packing feeding
//!   the encoders' `forward_batch` paths (bit-identical per account to the
//!   per-account paths under the Strict numerics profile).

mod augment;
mod batch;
mod contrast;
mod dynamic;
mod graphdata;
mod hier;
pub mod layers;

pub use augment::{augment, edge_drop_probs, AugmentConfig, AugmentedView};
pub use batch::{GsgBatch, GsgItem, LdgBatch};
pub use contrast::nt_xent;
pub use dynamic::{LdgConfig, LdgEncoder, LdgOutput};
pub use graphdata::{GraphTensors, CENTER_SEQ_LEN};
pub use hier::{GsgConfig, GsgEncoder, GsgOutput};
