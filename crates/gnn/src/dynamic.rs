//! The local dynamic account transaction encoding module (Section IV-B):
//! per-slice GCN topological features (Eq. 14), GRU evolution (Eqs. 15-18),
//! DiffPool hierarchical coarsening (Eqs. 19-21) and attention read-out over
//! time slices (Eq. 22) feeding the LDG prediction head (Eq. 23).

use crate::batch::LdgBatch;
use crate::graphdata::GraphTensors;
use crate::layers::GcnLayer;
use nn::{Activation, Ctx, GruCell, Linear, ParamId, ParamStore};
use rand::Rng;
use std::sync::Arc;
use tensor::{Csr, Tape, Var};

/// Configuration of the LDG encoder.
#[derive(Clone, Copy, Debug)]
pub struct LdgConfig {
    /// Input node-feature dimension.
    pub d_in: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Number of time slices `T` (paper: 10).
    pub t_slices: usize,
    /// Cluster counts of the DiffPool stages; the paper uses two poolings
    /// with `N₁' = 0.1 N` and `N₂' = 1`. We use fixed cluster counts so the
    /// assignment GNNs have fixed shapes across graphs.
    pub pool_clusters: [usize; 3],
    /// Number of pooling stages actually applied (1..=3; paper default 2).
    pub pool_layers: usize,
    /// Output embedding width.
    pub d_out: usize,
    pub n_classes: usize,
    /// Concatenate the centre account's final evolutionary features to the
    /// read-out (on by default; disable for the design ablation).
    pub use_center: bool,
}

impl Default for LdgConfig {
    fn default() -> Self {
        Self {
            d_in: 15,
            hidden: 64,
            t_slices: 10,
            pool_clusters: [12, 4, 1],
            pool_layers: 2,
            d_out: 32,
            n_classes: 2,
            use_center: true,
        }
    }
}

/// The local dynamic graph encoder.
pub struct LdgEncoder {
    pub config: LdgConfig,
    input_proj: Linear,
    gcn: GcnLayer,
    gru: GruCell,
    /// One assignment GNN per DiffPool stage (Eq. 19).
    assign: Vec<GcnLayer>,
    /// Read-out time-slice attention logits (Eq. 22's adaptive αₜ).
    time_attn: ParamId,
    /// Θg of Eq. 23.
    theta_g: Linear,
    head: Linear,
}

/// Output of one LDG forward pass.
pub struct LdgOutput {
    /// Read-out embedding `γ` after Eq. 23's ReLU projection, `(1, d_out)`.
    pub embedding: Var,
    /// Class logits `(1, n_classes)`.
    pub logits: Var,
}

impl LdgEncoder {
    pub fn new(store: &mut ParamStore, rng: &mut impl Rng, config: LdgConfig) -> Self {
        assert!(
            (1..=config.pool_clusters.len()).contains(&config.pool_layers),
            "pool_layers must be within the configured stages"
        );
        let input_proj =
            Linear::new(store, rng, "ldg.in", config.d_in, config.hidden, Activation::Tanh);
        let gcn =
            GcnLayer::new(store, rng, "ldg.gcn", config.hidden, config.hidden, Activation::Relu);
        let gru = GruCell::new(store, rng, "ldg.gru", config.hidden);
        let assign = (0..config.pool_layers)
            .map(|i| {
                GcnLayer::new(
                    store,
                    rng,
                    &format!("ldg.assign{i}"),
                    config.hidden,
                    config.pool_clusters[i],
                    Activation::None,
                )
            })
            .collect();
        let time_attn = store.zeros("ldg.time_attn", 1, config.t_slices);
        let gamma_width = if config.use_center { 2 * config.hidden } else { config.hidden };
        let theta_g =
            Linear::new(store, rng, "ldg.theta_g", gamma_width, config.d_out, Activation::Relu);
        let head =
            Linear::new(store, rng, "ldg.head", config.d_out, config.n_classes, Activation::None);
        Self { config, input_proj, gcn, gru, assign, time_attn, theta_g, head }
    }

    /// DiffPool chain for one time slice: returns the `(1, hidden)` pooled
    /// representation (Eqs. 19-21 followed by a mean over the final
    /// clusters).
    fn pool_slice(
        &self,
        tape: &mut Tape,
        ctx: &mut Ctx,
        store: &ParamStore,
        adj_csr: &Arc<Csr>,
        mut h: Var,
    ) -> Var {
        // Stage 0 consumes the slice's constant CSR adjacency (the `A` side
        // of Eq. 21's Mᵀ A M goes through the sparse kernel). Coarsened
        // stages operate on small dense adjacencies that carry gradients
        // through M, so they stay on the dense tape path.
        let mut adj: Option<Var> = None;
        for stage in &self.assign {
            // Eq. 19: M_t = softmax(GNN(A_t, h_t)).
            let scores = match adj {
                None => stage.forward_csr(tape, ctx, store, adj_csr, h),
                Some(a) => stage.forward(tape, ctx, store, a, h),
            };
            let m = tape.softmax_rows(scores);
            let mt = tape.transpose(m);
            // Eq. 20: h_pool = Mᵀ h. Eq. 21: A_pool = Mᵀ A M.
            h = tape.matmul(mt, h);
            let am = match adj {
                None => tape.spmm(adj_csr, m),
                Some(a) => tape.matmul(a, m),
            };
            adj = Some(tape.matmul(mt, am));
        }
        tape.mean_pool_rows(h)
    }

    /// Encode a lowered subgraph. The graph's `slice_adj` must contain at
    /// least one slice; slices beyond `t_slices` are ignored, missing ones
    /// reuse the last adjacency.
    pub fn forward(
        &self,
        tape: &mut Tape,
        ctx: &mut Ctx,
        store: &ParamStore,
        graph: &GraphTensors,
    ) -> LdgOutput {
        let x = tape.constant_copy(&graph.x);
        self.forward_with_x(tape, ctx, store, graph, x)
    }

    /// [`LdgEncoder::forward`] with the node features already on the tape;
    /// a gradient-carrying leaf lets callers differentiate with respect to
    /// the inputs (used by the batch-equivalence tests).
    pub fn forward_with_x(
        &self,
        tape: &mut Tape,
        ctx: &mut Ctx,
        store: &ParamStore,
        graph: &GraphTensors,
        x: Var,
    ) -> LdgOutput {
        assert!(!graph.slice_adj_csr.is_empty(), "LDG needs time slices");
        let mut h = self.input_proj.forward(tape, ctx, store, x);

        let mut pooled: Option<Var> = None;
        for t in 0..self.config.t_slices {
            let adj_csr =
                graph.slice_adj_csr.get(t).unwrap_or_else(|| graph.slice_adj_csr.last().unwrap());
            // Eq. 14: topological features from the previous evolutionary
            // state. Eqs. 15-18: GRU update.
            let u_t = self.gcn.forward_csr(tape, ctx, store, adj_csr, h);
            h = self.gru.forward(tape, ctx, store, u_t, h);
            // Eqs. 19-21: per-slice hierarchical pooling.
            let p = self.pool_slice(tape, ctx, store, adj_csr, h);
            pooled = Some(match pooled {
                None => p,
                Some(acc) => tape.concat_rows(acc, p),
            });
        }
        let stack = pooled.expect("at least one slice"); // (T, hidden)

        // Eq. 22: γ = Σ_t α_t h_tᵖᵒᵒˡ with learned softmax weights.
        let attn_logits = ctx.var(tape, store, self.time_attn);
        let alpha = tape.softmax_rows(attn_logits); // (1, T)
        let gamma = tape.matmul(alpha, stack); // (1, hidden)

        // The read-out targets "a unique representation of the central node
        // v_i" (Section IV-B): combine the pooled slice summary with the
        // centre account's final evolutionary features h_T[0].
        let gamma = if self.config.use_center {
            let center = tape.gather_rows(h, std::sync::Arc::new(vec![0]));
            tape.concat_cols(gamma, center)
        } else {
            gamma
        };

        // Eq. 23: l = ReLU(Θg γ), then the logits head.
        let embedding = self.theta_g.forward(tape, ctx, store, gamma);
        let logits = self.head.forward(tape, ctx, store, embedding);
        LdgOutput { embedding, logits }
    }

    /// Batched [`LdgEncoder::pool_slice`]: `adj_csr` is the slice's
    /// block-diagonal adjacency over the packed node rows, `offsets` the
    /// per-graph node segments. Returns `(B, hidden)`.
    ///
    /// Mirrors the per-graph chain op for op. The `gather_rows` identity copy
    /// of `M` stands in for the per-graph `transpose`: both give `M`'s
    /// gradient the same two-level accumulation tree (`h`-product and
    /// `A`-product contributions summed in a side buffer, then folded into
    /// the softmax output's gradient after the `Â M` contribution), which
    /// keeps the backward pass bit-identical — a flat three-way accumulation
    /// would associate the same sums differently.
    #[allow(clippy::too_many_arguments)]
    fn pool_slice_batch(
        &self,
        tape: &mut Tape,
        ctx: &mut Ctx,
        store: &ParamStore,
        adj_csr: &Arc<Csr>,
        mut h: Var,
        node_offsets: &Arc<Vec<usize>>,
        b: usize,
    ) -> Var {
        let mut adj: Option<Var> = None;
        let mut offsets = node_offsets.clone();
        for (i, stage) in self.assign.iter().enumerate() {
            // Eq. 19: M_t = softmax(GNN(A_t, h_t)), per graph.
            let scores = match adj {
                None => stage.forward_csr(tape, ctx, store, adj_csr, h),
                Some(a) => stage.forward_blocked(tape, ctx, store, a, h),
            };
            let m = tape.softmax_rows(scores);
            let rows = *offsets.last().unwrap();
            let m2 = tape.gather_rows(m, Arc::new((0..rows).collect()));
            // Eq. 20: h_pool = Mᵀ h. Eq. 21: A_pool = Mᵀ A M, per segment.
            h = tape.seg_matmul_tn(m2, h, offsets.clone());
            let am = match adj {
                None => tape.spmm(adj_csr, m),
                Some(a) => tape.seg_block_matmul(a, m),
            };
            adj = Some(tape.seg_matmul_tn(m2, am, offsets.clone()));
            let c = self.config.pool_clusters[i];
            offsets = Arc::new((0..=b).map(|g| g * c).collect());
        }
        tape.segment_mean_pool_rows(h, offsets)
    }

    /// Encode a packed mini-batch in one pass: row `g` of every output is
    /// bit-identical to what [`LdgEncoder::forward`] produces for graph `g`
    /// alone (under the Strict numerics profile — Fast relaxes the dense
    /// GEMMs).
    pub fn forward_batch(
        &self,
        tape: &mut Tape,
        ctx: &mut Ctx,
        store: &ParamStore,
        batch: &LdgBatch,
    ) -> LdgOutput {
        let x = tape.constant_copy(&batch.x);
        self.forward_batch_with_x(tape, ctx, store, batch, x)
    }

    /// [`LdgEncoder::forward_batch`] with the packed node features already on
    /// the tape (gradient-carrying when the caller needs input gradients).
    pub fn forward_batch_with_x(
        &self,
        tape: &mut Tape,
        ctx: &mut Ctx,
        store: &ParamStore,
        batch: &LdgBatch,
        x: Var,
    ) -> LdgOutput {
        assert!(!batch.slice_csr.is_empty(), "LDG needs time slices");
        let b = batch.len();
        let mut h = self.input_proj.forward(tape, ctx, store, x);

        let mut pooled: Option<Var> = None;
        for t in 0..self.config.t_slices {
            let adj_csr = batch.slice_csr.get(t).unwrap_or_else(|| batch.slice_csr.last().unwrap());
            // Eq. 14: topological features. Eqs. 15-18: GRU update. Both are
            // row-local (SpMM never crosses block-diagonal boundaries), so
            // the per-graph layers run unchanged on the packed rows.
            let u_t = self.gcn.forward_csr(tape, ctx, store, adj_csr, h);
            h = self.gru.forward(tape, ctx, store, u_t, h);
            // Eqs. 19-21: per-slice hierarchical pooling, `(B, hidden)`.
            let p = self.pool_slice_batch(tape, ctx, store, adj_csr, h, &batch.offsets, b);
            pooled = Some(match pooled {
                None => p,
                Some(acc) => tape.concat_rows(acc, p),
            });
        }
        // Slice-major `(T·B, hidden)` → graph-major `(B·T, hidden)` so each
        // graph's stack is one contiguous segment.
        let stack_tb = pooled.expect("at least one slice");
        let stack = tape.gather_rows(stack_tb, batch.stack_perm.clone());

        // Eq. 22: γ_g = α stack_g. The attention row is shared across the
        // batch (it depends only on the learned logits), so it is tiled down
        // the graph-major stack and contracted per segment — `seg_matmul_tn`
        // with a single-column left operand replays each graph's
        // `matmul(alpha, stack)` bit for bit.
        let attn_logits = ctx.var(tape, store, self.time_attn);
        let alpha = tape.softmax_rows(attn_logits); // (1, T)
        let alpha_col = tape.transpose(alpha); // (T, 1)
        let alpha_rep = tape.gather_rows(alpha_col, batch.alpha_tile.clone()); // (B·T, 1)
        let gamma = tape.seg_matmul_tn(alpha_rep, stack, batch.time_offsets.clone());

        let gamma = if self.config.use_center {
            let center = tape.gather_rows(h, batch.center_rows.clone());
            tape.concat_cols(gamma, center)
        } else {
            gamma
        };

        // Eq. 23: l = ReLU(Θg γ), then the logits head — row-independent.
        let embedding = self.theta_g.forward(tape, ctx, store, gamma);
        let logits = self.head.forward(tape, ctx, store, embedding);
        LdgOutput { embedding, logits }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eth_graph::{AccountKind, LocalTx, Subgraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn toy(label: usize, bursty: bool) -> GraphTensors {
        // Bursty graphs concentrate all transactions in the first slice;
        // uniform graphs spread them out.
        let ts = |i: usize| if bursty { i as u64 } else { i as u64 * 1000 };
        let g = Subgraph::from_parts(
            vec![0, 1, 2],
            vec![AccountKind::Eoa; 3],
            (0..6)
                .map(|i| LocalTx {
                    src: i % 3,
                    dst: (i + 1) % 3,
                    value: 1.0 + i as f64,
                    timestamp: ts(i) + if bursty && i == 5 { 10_000 } else { 0 },
                    fee: 0.001,
                    contract_call: false,
                })
                .collect(),
            Some(label),
        );
        GraphTensors::from_subgraph(&g, 5)
    }

    fn encoder(pool_layers: usize) -> (ParamStore, LdgEncoder) {
        let mut rng = StdRng::seed_from_u64(13);
        let mut store = ParamStore::new();
        let cfg =
            LdgConfig { hidden: 16, t_slices: 5, d_out: 8, pool_layers, ..Default::default() };
        let enc = LdgEncoder::new(&mut store, &mut rng, cfg);
        (store, enc)
    }

    #[test]
    fn forward_shapes_for_each_pool_depth() {
        for layers in 1..=3 {
            let (store, enc) = encoder(layers);
            let g = toy(1, false);
            let mut tape = Tape::new();
            let mut ctx = Ctx::new(&store);
            let out = enc.forward(&mut tape, &mut ctx, &store, &g);
            assert_eq!(tape.value(out.embedding).shape(), (1, 8));
            assert_eq!(tape.value(out.logits).shape(), (1, 2));
            assert!(tape.value(out.logits).all_finite());
        }
    }

    #[test]
    fn gradients_reach_gru_and_time_attention() {
        let (mut store, enc) = encoder(2);
        let g = toy(1, true);
        let mut tape = Tape::new();
        let mut ctx = Ctx::new(&store);
        let out = enc.forward(&mut tape, &mut ctx, &store, &g);
        let loss = tape.cross_entropy(out.logits, Arc::new(vec![1]));
        tape.backward(loss);
        ctx.accumulate_grads(&tape, &mut store);
        for name in ["ldg.gru.w_u", "ldg.time_attn", "ldg.assign0.w", "ldg.theta_g.w"] {
            let id = store.find(name).unwrap();
            let norm: f32 = store.grad(id).data().iter().map(|x| x * x).sum();
            assert!(norm > 0.0, "no gradient for {name}");
        }
    }

    #[test]
    fn learns_to_separate_bursty_from_uniform() {
        let (mut store, enc) = encoder(2);
        let g_burst = toy(1, true);
        let g_unif = toy(0, false);
        let mut opt = nn::Adam::new(0.02);
        let mut last = f32::MAX;
        for _ in 0..80 {
            store.zero_grad();
            let mut tape = Tape::new();
            let mut ctx = Ctx::new(&store);
            let o1 = enc.forward(&mut tape, &mut ctx, &store, &g_burst);
            let o0 = enc.forward(&mut tape, &mut ctx, &store, &g_unif);
            let logits = tape.concat_rows(o1.logits, o0.logits);
            let loss = tape.cross_entropy(logits, Arc::new(vec![1, 0]));
            last = tape.value(loss).item();
            tape.backward(loss);
            ctx.accumulate_grads(&tape, &mut store);
            opt.step(&mut store);
        }
        assert!(last < 0.15, "LDG failed to fit temporal toy pair: {last}");
    }
}
