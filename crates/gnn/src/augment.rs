//! Contrastive learning with adaptive augmentation (Section IV-A3).
//!
//! Following GCA (Zhu et al., 2021) as the paper does:
//!
//! * **Topology-level**: each real edge is removed with a probability that
//!   grows as its edge centrality (mean of endpoint log-centralities under
//!   degree / eigenvector / PageRank centrality) shrinks — unimportant edges
//!   are perturbed, important topology is preserved.
//! * **Node-attribute-level**: a random fraction of feature dimensions is
//!   masked to zero.

use crate::graphdata::GraphTensors;
use eth_graph::centrality::{edge_centrality, node_centrality, CentralityMeasure};
use rand::Rng;
use std::sync::Arc;
use tensor::Tensor;

/// Augmentation hyper-parameters (the `P_e`, `P_f` of Section V-F1).
#[derive(Clone, Copy, Debug)]
pub struct AugmentConfig {
    /// Base edge-removal probability `P_e`.
    pub p_edge: f64,
    /// Feature-dimension masking probability `P_f`.
    pub p_feat: f64,
    /// Upper cutoff on any single edge's removal probability (GCA's `p_τ`).
    pub p_tau: f64,
    pub measure: CentralityMeasure,
}

impl AugmentConfig {
    /// The paper's view-1 defaults (`P_f = 0.1`, `P_e = 0.3`).
    pub fn view1() -> Self {
        Self { p_edge: 0.3, p_feat: 0.1, p_tau: 0.7, measure: CentralityMeasure::Degree }
    }

    /// The paper's view-2 defaults (`P_f = 0.0`, `P_e = 0.4`).
    pub fn view2() -> Self {
        Self { p_edge: 0.4, p_feat: 0.0, p_tau: 0.7, measure: CentralityMeasure::PageRank }
    }
}

/// An augmented view of a graph, holding exactly what the GSG encoder needs.
pub struct AugmentedView {
    pub n: usize,
    pub x: Tensor,
    pub src: Arc<Vec<usize>>,
    pub dst: Arc<Vec<usize>>,
    pub edge_feat: Tensor,
}

/// Per-edge removal probabilities from centrality (GCA Eq. 2 analogue):
/// `p_e · (s_max − s_e) / (s_max − s_mean)`, clamped to `p_tau`.
pub fn edge_drop_probs(
    n: usize,
    edges: &[(usize, usize)],
    measure: CentralityMeasure,
    p_edge: f64,
    p_tau: f64,
) -> Vec<f64> {
    if edges.is_empty() {
        return Vec::new();
    }
    let mut adj = vec![Vec::new(); n];
    for &(u, v) in edges {
        if u != v {
            adj[u].push(v);
            adj[v].push(u);
        }
    }
    let node_c = node_centrality(&adj, measure);
    let s = edge_centrality(&node_c, edges);
    let s_max = s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let s_mean = s.iter().sum::<f64>() / s.len() as f64;
    let denom = (s_max - s_mean).max(1e-9);
    s.iter().map(|&se| (p_edge * (s_max - se) / denom).min(p_tau).max(0.0)).collect()
}

/// Generate one augmented view of a lowered graph.
pub fn augment(graph: &GraphTensors, config: AugmentConfig, rng: &mut impl Rng) -> AugmentedView {
    let n = graph.n;
    let real = graph.real_edges();
    let probs = edge_drop_probs(n, &real, config.measure, config.p_edge, config.p_tau);

    let mut src = Vec::with_capacity(real.len() + n);
    let mut dst = Vec::with_capacity(real.len() + n);
    let mut kept_rows: Vec<usize> = Vec::with_capacity(real.len());
    for (i, &(u, v)) in real.iter().enumerate() {
        if !rng.gen_bool(probs[i]) {
            src.push(u);
            dst.push(v);
            kept_rows.push(i);
        }
    }
    // Self-loops always survive (they carry the node's own representation).
    let mut edge_feat = Tensor::zeros(kept_rows.len() + n, graph.edge_feat.cols());
    for (r, &orig) in kept_rows.iter().enumerate() {
        edge_feat.row_mut(r).copy_from_slice(graph.edge_feat.row(orig));
    }
    for v in 0..n {
        src.push(v);
        dst.push(v);
    }

    // Node-attribute masking: zero whole feature dimensions.
    let mut x = graph.x.clone();
    let d = x.cols();
    for c in 0..d {
        if rng.gen_bool(config.p_feat) {
            for r in 0..n {
                x.set(r, c, 0.0);
            }
        }
    }

    AugmentedView { n, x, src: Arc::new(src), dst: Arc::new(dst), edge_feat }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eth_graph::{AccountKind, LocalTx, Subgraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star_graph() -> GraphTensors {
        // Hub 0 with spokes 1..5, plus one peripheral edge 4-5.
        let mut txs = Vec::new();
        for i in 1..6 {
            txs.push(LocalTx {
                src: 0,
                dst: i,
                value: 1.0,
                timestamp: i as u64,
                fee: 0.0,
                contract_call: false,
            });
        }
        txs.push(LocalTx {
            src: 4,
            dst: 5,
            value: 1.0,
            timestamp: 9,
            fee: 0.0,
            contract_call: false,
        });
        let g = Subgraph::from_parts((0..6).collect(), vec![AccountKind::Eoa; 6], txs, Some(1));
        GraphTensors::from_subgraph(&g, 2)
    }

    #[test]
    fn drop_probs_bounded_and_favour_peripheral_edges() {
        let g = star_graph();
        let real = g.real_edges();
        let probs = edge_drop_probs(g.n, &real, CentralityMeasure::Degree, 0.3, 0.7);
        assert_eq!(probs.len(), real.len());
        for &p in &probs {
            assert!((0.0..=0.7).contains(&p));
        }
        // The peripheral 4-5 edge should be at least as droppable as any
        // hub edge.
        let peri = real.iter().position(|&(u, v)| (u, v) == (4, 5)).unwrap();
        let hub = real.iter().position(|&(u, _)| u == 0).unwrap();
        assert!(probs[peri] >= probs[hub]);
    }

    #[test]
    fn augment_keeps_self_loops_and_node_count() {
        let g = star_graph();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = AugmentConfig {
            p_edge: 0.9,
            p_tau: 0.95,
            p_feat: 0.0,
            measure: CentralityMeasure::Degree,
        };
        let view = augment(&g, cfg, &mut rng);
        assert_eq!(view.n, g.n);
        // The last n edges are the self-loops.
        for i in 0..g.n {
            let e = view.src.len() - g.n + i;
            assert_eq!(view.src[e], i);
            assert_eq!(view.dst[e], i);
        }
        assert!(view.src.len() < g.src.len(), "aggressive drop removed nothing");
    }

    #[test]
    fn zero_probabilities_are_identity() {
        let g = star_graph();
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = AugmentConfig {
            p_edge: 0.0,
            p_tau: 0.7,
            p_feat: 0.0,
            measure: CentralityMeasure::PageRank,
        };
        let view = augment(&g, cfg, &mut rng);
        assert_eq!(view.src.len(), g.src.len());
        assert_eq!(view.x, g.x);
    }

    #[test]
    fn feature_masking_zeroes_whole_columns() {
        let g = star_graph();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = AugmentConfig {
            p_edge: 0.0,
            p_tau: 0.7,
            p_feat: 1.0,
            measure: CentralityMeasure::Degree,
        };
        let view = augment(&g, cfg, &mut rng);
        assert!(view.x.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn augmentation_is_seed_deterministic() {
        let g = star_graph();
        let cfg = AugmentConfig::view1();
        let a = augment(&g, cfg, &mut StdRng::seed_from_u64(4));
        let b = augment(&g, cfg, &mut StdRng::seed_from_u64(4));
        assert_eq!(a.src, b.src);
        assert_eq!(a.x, b.x);
    }
}
