//! NT-Xent contrastive objective over graph embeddings.
//!
//! The GSG branch maximises agreement between the two augmented views of the
//! same subgraph while pushing apart different subgraphs in the batch
//! (Section IV-A3). Composed from tape primitives so gradients are exact.

use std::sync::Arc;
use tensor::{Tape, Var};

/// Symmetric NT-Xent loss between two view batches `z1, z2` of shape
/// `(B, d)`: rows with equal index are positive pairs, all other rows are
/// negatives. `temperature` is the usual τ.
pub fn nt_xent(tape: &mut Tape, z1: Var, z2: Var, temperature: f32) -> Var {
    let (b, _) = tape.value(z1).shape();
    assert_eq!(tape.value(z1).shape(), tape.value(z2).shape());
    assert!(b > 0, "empty contrastive batch");
    let n1 = tape.l2_normalize_rows(z1, 1e-8);
    let n2 = tape.l2_normalize_rows(z2, 1e-8);
    let n2t = tape.transpose(n2);
    let sim = tape.matmul(n1, n2t);
    let sim = tape.scale(sim, 1.0 / temperature);
    let targets = Arc::new((0..b).collect::<Vec<usize>>());
    let loss12 = tape.cross_entropy(sim, targets.clone());
    let sim_t = tape.transpose(sim);
    let loss21 = tape.cross_entropy(sim_t, targets);
    let sum = tape.add(loss12, loss21);
    tape.scale(sum, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Tensor;

    #[test]
    fn aligned_views_have_lower_loss_than_misaligned() {
        let mut tape = Tape::new();
        // Orthogonal embeddings: perfect alignment (z1 == z2).
        let z = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let a = tape.leaf(z.clone());
        let b = tape.leaf(z.clone());
        let good = nt_xent(&mut tape, a, b, 0.5);
        // Misaligned: z2 rows swapped.
        let swapped = Tensor::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let c = tape.leaf(z);
        let d = tape.leaf(swapped);
        let bad = nt_xent(&mut tape, c, d, 0.5);
        assert!(tape.value(good).item() < tape.value(bad).item());
    }

    #[test]
    fn loss_is_scale_invariant_via_normalisation() {
        let mut tape = Tape::new();
        let z = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.5, 2.0]);
        let a1 = tape.leaf(z.clone());
        let b1 = tape.leaf(z.clone());
        let l1 = nt_xent(&mut tape, a1, b1, 1.0);
        let scaled = z.map(|x| 10.0 * x);
        let a2 = tape.leaf(scaled.clone());
        let b2 = tape.leaf(scaled);
        let l2 = nt_xent(&mut tape, a2, b2, 1.0);
        assert!((tape.value(l1).item() - tape.value(l2).item()).abs() < 1e-5);
    }

    #[test]
    fn gradient_pulls_views_together() {
        // One step of gradient descent on NT-Xent should increase the
        // cosine similarity of a positive pair.
        let z1 = Tensor::from_vec(2, 2, vec![1.0, 0.2, -0.3, 1.0]);
        let z2 = Tensor::from_vec(2, 2, vec![0.2, 1.0, 1.0, -0.3]);
        let cos = |a: &Tensor, b: &Tensor, r: usize| -> f32 {
            let (x, y) = (a.row(r), b.row(r));
            let dot: f32 = x.iter().zip(y).map(|(&p, &q)| p * q).sum();
            let nx: f32 = x.iter().map(|v| v * v).sum::<f32>().sqrt();
            let ny: f32 = y.iter().map(|v| v * v).sum::<f32>().sqrt();
            dot / (nx * ny)
        };
        let before = cos(&z1, &z2, 0);
        let mut tape = Tape::new();
        let a = tape.leaf(z1.clone());
        let b = tape.leaf(z2.clone());
        let loss = nt_xent(&mut tape, a, b, 0.5);
        tape.backward(loss);
        let mut z1_new = z1.clone();
        z1_new.add_scaled(tape.grad(a).unwrap(), -0.5);
        let after = cos(&z1_new, &z2, 0);
        assert!(after > before, "cosine did not improve: {before} -> {after}");
    }
}
