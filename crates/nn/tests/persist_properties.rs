//! Property tests for trained-model tensor persistence: arbitrary
//! `ParamStore`s round-trip through the `model-io` container bit-exactly,
//! and damaged containers fail with a typed error instead of panicking or
//! silently misloading.

use model_io::{ModelIoError, ModelReader, ModelWriter, SectionWriter};
use nn::ParamStore;
use proptest::prelude::*;
use tensor::Tensor;

/// Arbitrary parameter tensors, including awkward values (±0.0, subnormals,
/// infinities) that a decimal round-trip would corrupt.
fn stores() -> impl Strategy<Value = ParamStore> {
    prop::collection::vec(
        (1usize..6, 1usize..6, prop::collection::vec(-1e30f32..1e30, 36..37), 0u32..4),
        0..6,
    )
    .prop_map(|specs| {
        let mut store = ParamStore::new();
        for (i, (rows, cols, mut data, special)) in specs.into_iter().enumerate() {
            data.truncate(rows * cols);
            // Splice in special values that must survive bit-exactly.
            if let Some(x) = data.first_mut() {
                *x = match special {
                    0 => -0.0,
                    1 => f32::INFINITY,
                    2 => f32::MIN_POSITIVE / 2.0, // subnormal
                    _ => *x,
                };
            }
            store.add(format!("layer{i}.w"), Tensor::from_vec(rows, cols, data));
        }
        store
    })
}

fn save(store: &ParamStore) -> Vec<u8> {
    let mut w = ModelWriter::new();
    let mut s = SectionWriter::new();
    store.write_section(&mut s);
    w.push("params", s);
    w.to_bytes()
}

fn load(bytes: &[u8]) -> Result<ParamStore, ModelIoError> {
    let r = ModelReader::from_bytes(bytes)?;
    let mut s = r.section("params")?;
    let store = ParamStore::read_section(&mut s)?;
    s.expect_end("params")?;
    Ok(store)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// save → load reproduces every name, shape and weight bit pattern.
    #[test]
    fn param_stores_round_trip_exactly(store in stores()) {
        let loaded = load(&save(&store)).expect("intact container loads");
        prop_assert_eq!(loaded.len(), store.len());
        for (a, b) in store.ids().zip(loaded.ids()) {
            prop_assert_eq!(store.name(a), loaded.name(b));
            prop_assert_eq!(store.value(a).shape(), loaded.value(b).shape());
            prop_assert_eq!(store.value(a).to_bits_vec(), loaded.value(b).to_bits_vec());
        }
    }

    /// Any strict prefix of a saved store is rejected with a typed error.
    #[test]
    fn truncated_stores_are_rejected(store in stores(), cut in 0.0f64..1.0) {
        let bytes = save(&store);
        let keep = (cut * (bytes.len() - 1) as f64) as usize;
        match load(&bytes[..keep]) {
            Ok(_) => prop_assert!(false, "truncated store at {keep}/{} loaded", bytes.len()),
            Err(e) => { let _ = e.to_string(); }
        }
    }

    /// Any single bit flip in a saved store is rejected with a typed error.
    #[test]
    fn bit_flipped_stores_are_rejected(store in stores(), pos in 0.0f64..1.0, bit in 0u32..8) {
        let mut bytes = save(&store);
        let i = (pos * (bytes.len() - 1) as f64) as usize;
        bytes[i] ^= 1 << bit;
        match load(&bytes) {
            Ok(_) => prop_assert!(false, "bit flip at byte {i} bit {bit} went undetected"),
            Err(e) => { let _ = e.to_string(); }
        }
    }
}

/// A structurally valid section whose declared shape disagrees with its
/// value count must be rejected by the `ParamStore` reader itself (the
/// container checksum cannot catch writer-level bugs).
#[test]
fn shape_value_count_mismatch_is_corrupt() {
    let mut w = ModelWriter::new();
    let mut s = SectionWriter::new();
    s.put_u32(1); // one parameter
    s.put_str("w");
    s.put_u32(2); // rows
    s.put_u32(3); // cols
    s.put_usize(5); // ...but only five values claimed
    for b in 0..5u32 {
        s.put_u32(b);
    }
    w.push("params", s);
    match load(&w.to_bytes()) {
        Err(ModelIoError::Corrupt { context }) => assert!(context.contains("'w'"), "{context}"),
        Err(other) => panic!("expected Corrupt, got {other:?}"),
        Ok(_) => panic!("mismatched shape loaded"),
    }
}
