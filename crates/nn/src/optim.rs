//! First-order optimisers over a [`ParamStore`].

use crate::params::ParamStore;
use tensor::Tensor;

/// Plain stochastic gradient descent with optional weight decay.
pub struct Sgd {
    pub lr: f32,
    pub weight_decay: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Self { lr, weight_decay: 0.0 }
    }

    pub fn step(&mut self, store: &mut ParamStore) {
        let (lr, wd) = (self.lr, self.weight_decay);
        store.apply(|v, g| {
            for (x, &gx) in v.data_mut().iter_mut().zip(g.data()) {
                *x -= lr * (gx + wd * *x);
            }
        });
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction, matching the paper's
/// training setup ("we use Adam optimizer").
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Apply one update using the gradients accumulated in `store`.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        // Lazily size the moment buffers to the store (parameters are only
        // ever appended, never removed).
        let mut i = self.m.len();
        while self.m.len() < store.len() {
            let id = crate::params::ParamId(i);
            let (r, c) = store.value(id).shape();
            self.m.push(Tensor::zeros(r, c));
            self.v.push(Tensor::zeros(r, c));
            i += 1;
        }
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let (ms, vs) = (&mut self.m, &mut self.v);
        let mut k = 0usize;
        store.apply(|val, grad| {
            let m = &mut ms[k];
            let v = &mut vs[k];
            for ((x, &g), (mi, vi)) in val
                .data_mut()
                .iter_mut()
                .zip(grad.data())
                .zip(m.data_mut().iter_mut().zip(v.data_mut().iter_mut()))
            {
                let g = g + wd * *x;
                *mi = b1 * *mi + (1.0 - b1) * g;
                *vi = b2 * *vi + (1.0 - b2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *x -= lr * mhat / (vhat.sqrt() + eps);
            }
            k += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Ctx, ParamStore};
    use tensor::{Tape, Tensor};

    /// Minimise (w - 3)^2 and check both optimisers converge.
    fn converges(mut step: impl FnMut(&mut ParamStore), store: &mut ParamStore) -> f32 {
        let w = crate::params::ParamId(0);
        for _ in 0..500 {
            store.zero_grad();
            let mut tape = Tape::new();
            let mut ctx = Ctx::new(store);
            let wv = ctx.var(&mut tape, store, w);
            let shifted = tape.add_scalar(wv, -3.0);
            let sq = tape.mul(shifted, shifted);
            let loss = tape.sum_all(sq);
            tape.backward(loss);
            ctx.accumulate_grads(&tape, store);
            step(store);
        }
        store.value(w).item()
    }

    #[test]
    fn sgd_converges_to_minimum() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::scalar(-5.0));
        let mut opt = Sgd::new(0.1);
        let w = converges(|s| opt.step(s), &mut store);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn adam_converges_to_minimum() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::scalar(-5.0));
        let mut opt = Adam::new(0.05);
        let w = converges(|s| opt.step(s), &mut store);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_handles_params_added_after_construction() {
        let mut store = ParamStore::new();
        store.add("a", Tensor::scalar(1.0));
        let mut opt = Adam::new(0.01);
        opt.step(&mut store);
        store.add("b", Tensor::scalar(2.0));
        opt.step(&mut store); // must not panic
        assert_eq!(opt.m.len(), 2);
    }
}
