//! # nn — parameters, optimisers, layers and metrics
//!
//! Training infrastructure shared by every model in the DBG4ETH
//! reproduction:
//!
//! * [`ParamStore`] / [`Ctx`] — persistent parameters bridged onto a fresh
//!   autodiff tape each forward pass,
//! * [`Adam`] / [`Sgd`] — optimisers,
//! * [`Linear`], [`Mlp`], [`GruCell`] — layers (the GRU implements the
//!   paper's Eqs. 15-18 exactly),
//! * [`metrics`] — precision / recall / F1 / accuracy and ROC-AUC.

mod layers;
mod optim;
mod params;
mod persist;

pub mod metrics;

pub use layers::{Activation, GruCell, Linear, Mlp};
pub use optim::{Adam, Sgd};
pub use params::{Ctx, ParamId, ParamStore};
