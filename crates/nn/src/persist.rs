//! Saving and loading a [`ParamStore`] — simple self-describing binary
//! format, no external dependencies.
//!
//! Layout (little-endian):
//! ```text
//! magic "DBGW" | version u32 | n_params u32 |
//!   per param: name_len u32 | name bytes | rows u32 | cols u32 | data f32…
//! ```

use crate::params::{ParamId, ParamStore};
use model_io::{ModelIoError, SectionReader, SectionWriter};
use std::io::{self, Read, Write};
use std::path::Path;
use tensor::Tensor;

const MAGIC: &[u8; 4] = b"DBGW";
const VERSION: u32 = 1;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

impl ParamStore {
    /// Serialise all parameters (values only; gradients and optimiser state
    /// are training-time artefacts).
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        write_u32(w, VERSION)?;
        write_u32(w, self.len() as u32)?;
        for id in self.ids() {
            let name = self.name(id).as_bytes();
            write_u32(w, name.len() as u32)?;
            w.write_all(name)?;
            let t = self.value(id);
            write_u32(w, t.rows() as u32)?;
            write_u32(w, t.cols() as u32)?;
            for &x in t.data() {
                w.write_all(&x.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Save to a file.
    pub fn save_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        self.save(&mut f)?;
        f.flush()
    }

    /// Deserialise a store written by [`ParamStore::save`].
    pub fn load(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        let version = read_u32(r)?;
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported version {version}"),
            ));
        }
        let n = read_u32(r)? as usize;
        let mut store = ParamStore::new();
        for _ in 0..n {
            let name_len = read_u32(r)? as usize;
            if name_len > 1 << 20 {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "name too long"));
            }
            let mut name = vec![0u8; name_len];
            r.read_exact(&mut name)?;
            let name = String::from_utf8(name)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            let rows = read_u32(r)? as usize;
            let cols = read_u32(r)? as usize;
            if rows.saturating_mul(cols) > 1 << 28 {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "tensor too large"));
            }
            let mut data = Vec::with_capacity(rows * cols);
            let mut buf = [0u8; 4];
            for _ in 0..rows * cols {
                r.read_exact(&mut buf)?;
                data.push(f32::from_le_bytes(buf));
            }
            store.add(name, Tensor::from_vec(rows, cols, data));
        }
        Ok(store)
    }

    /// Load from a file.
    pub fn load_from(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::load(&mut io::BufReader::new(std::fs::File::open(path)?))
    }

    /// Serialise all parameters into a checksummed `model-io` section:
    /// `n_params u32 | per param: name | rows u32 | cols u32 | f32 bits`.
    /// Weights travel as IEEE-754 bit patterns, so a save→load round trip
    /// reproduces every value exactly (the byte-identity contract of
    /// `dbg4eth::Session::score` depends on this).
    pub fn write_section(&self, s: &mut SectionWriter) {
        s.put_u32(self.len() as u32);
        for id in self.ids() {
            s.put_str(self.name(id));
            let t = self.value(id);
            s.put_u32(t.rows() as u32);
            s.put_u32(t.cols() as u32);
            s.put_usize(t.len());
            for b in t.to_bits_vec() {
                s.put_u32(b);
            }
        }
    }

    /// Rebuild a store from a section written by
    /// [`ParamStore::write_section`]. Structural damage surfaces as a typed
    /// [`ModelIoError`]; this never panics on corrupt input.
    pub fn read_section(s: &mut SectionReader) -> Result<Self, ModelIoError> {
        let n = s.get_u32()? as usize;
        let mut store = ParamStore::new();
        for _ in 0..n {
            let name = s.get_str()?;
            let rows = s.get_u32()? as usize;
            let cols = s.get_u32()? as usize;
            let len = s.get_usize()?;
            if len != rows.saturating_mul(cols) || len.saturating_mul(4) > s.remaining() {
                return Err(ModelIoError::Corrupt {
                    context: format!(
                        "parameter '{name}' claims shape ({rows}, {cols}) with {len} values"
                    ),
                });
            }
            let mut bits = Vec::with_capacity(len);
            for _ in 0..len {
                bits.push(s.get_u32()?);
            }
            store.add(name, Tensor::from_bits_vec(rows, cols, &bits));
        }
        Ok(store)
    }

    /// Copy values from `other` by matching parameter names. Returns the
    /// number of parameters restored; shapes must match exactly.
    pub fn restore_from(&mut self, other: &ParamStore) -> usize {
        let mut restored = 0;
        let ids: Vec<ParamId> = self.ids().collect();
        for id in ids {
            if let Some(src) = other.find(self.name(id)) {
                if other.value(src).shape() == self.value(id).shape() {
                    *self.value_mut(id) = other.value(src).clone();
                    restored += 1;
                }
            }
        }
        restored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_store() -> ParamStore {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = ParamStore::new();
        s.xavier("layer1.w", 4, 3, &mut rng);
        s.zeros("layer1.b", 1, 3);
        s.xavier("head.w", 3, 2, &mut rng);
        s
    }

    #[test]
    fn save_load_round_trip() {
        let store = sample_store();
        let mut buf = Vec::new();
        store.save(&mut buf).unwrap();
        let loaded = ParamStore::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), store.len());
        for (a, b) in store.ids().zip(loaded.ids()) {
            assert_eq!(store.name(a), loaded.name(b));
            assert_eq!(store.value(a), loaded.value(b));
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let result = ParamStore::load(&mut &b"NOPE\x01\x00\x00\x00"[..]);
        match result {
            Err(err) => assert_eq!(err.kind(), io::ErrorKind::InvalidData),
            Ok(_) => panic!("bad magic accepted"),
        }
    }

    #[test]
    fn truncated_stream_rejected() {
        // (uses unwrap_err via is_err to avoid Debug bound on ParamStore)
        let store = sample_store();
        let mut buf = Vec::new();
        store.save(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(ParamStore::load(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn restore_by_name_and_shape() {
        let saved = sample_store();
        // A fresh model with the same architecture but different init.
        let mut rng = StdRng::seed_from_u64(99);
        let mut fresh = ParamStore::new();
        fresh.xavier("layer1.w", 4, 3, &mut rng);
        fresh.zeros("layer1.b", 1, 3);
        fresh.xavier("head.w", 3, 2, &mut rng);
        let restored = fresh.restore_from(&saved);
        assert_eq!(restored, 3);
        for (a, b) in saved.ids().zip(fresh.ids()) {
            assert_eq!(saved.value(a), fresh.value(b));
        }
    }

    #[test]
    fn restore_skips_shape_mismatches() {
        let saved = sample_store();
        let mut fresh = ParamStore::new();
        fresh.zeros("layer1.w", 2, 2); // wrong shape
        fresh.zeros("unknown", 1, 1); // absent from saved
        assert_eq!(fresh.restore_from(&saved), 0);
    }

    #[test]
    fn file_round_trip() {
        let store = sample_store();
        let path = std::env::temp_dir().join("dbg4eth_params_test.bin");
        store.save_to(&path).unwrap();
        let loaded = ParamStore::load_from(&path).unwrap();
        assert_eq!(loaded.len(), store.len());
        let _ = std::fs::remove_file(&path);
    }
}
