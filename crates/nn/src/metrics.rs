//! Classification metrics used across the paper's evaluation: precision,
//! recall, F1, accuracy (Section V-A2) and ROC/AUC (Fig. 7).

/// Binary confusion counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Confusion {
    pub tp: usize,
    pub fp: usize,
    pub tn: usize,
    pub fn_: usize,
}

impl Confusion {
    /// Tally predictions against labels (`true` = positive class).
    pub fn from_preds(preds: &[bool], labels: &[bool]) -> Self {
        assert_eq!(preds.len(), labels.len());
        let mut c = Confusion::default();
        for (&p, &l) in preds.iter().zip(labels) {
            match (p, l) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    pub fn precision(&self) -> f64 {
        safe_div(self.tp as f64, (self.tp + self.fp) as f64)
    }

    pub fn recall(&self) -> f64 {
        safe_div(self.tp as f64, (self.tp + self.fn_) as f64)
    }

    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        safe_div(2.0 * p * r, p + r)
    }

    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        safe_div((self.tp + self.tn) as f64, total as f64)
    }
}

fn safe_div(n: f64, d: f64) -> f64 {
    if d == 0.0 {
        0.0
    } else {
        n / d
    }
}

/// Precision/recall/F1/accuracy, reported as percentages like the paper's
/// tables.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Metrics {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    pub accuracy: f64,
}

impl Metrics {
    pub fn from_confusion(c: &Confusion) -> Self {
        Self {
            precision: c.precision() * 100.0,
            recall: c.recall() * 100.0,
            f1: c.f1() * 100.0,
            accuracy: c.accuracy() * 100.0,
        }
    }

    /// Binary metrics from hard predictions.
    pub fn binary(preds: &[bool], labels: &[bool]) -> Self {
        Self::from_confusion(&Confusion::from_preds(preds, labels))
    }

    /// Binary metrics from scores thresholded at `thresh`.
    pub fn from_scores(scores: &[f64], labels: &[bool], thresh: f64) -> Self {
        let preds: Vec<bool> = scores.iter().map(|&s| s >= thresh).collect();
        Self::binary(&preds, labels)
    }

    /// Macro-averaged metrics over both classes (positive and negative),
    /// matching how several of the paper's baselines report results on
    /// balanced binary tasks.
    pub fn binary_macro(preds: &[bool], labels: &[bool]) -> Self {
        let pos = Confusion::from_preds(preds, labels);
        let neg_preds: Vec<bool> = preds.iter().map(|p| !p).collect();
        let neg_labels: Vec<bool> = labels.iter().map(|l| !l).collect();
        let neg = Confusion::from_preds(&neg_preds, &neg_labels);
        Self {
            precision: (pos.precision() + neg.precision()) / 2.0 * 100.0,
            recall: (pos.recall() + neg.recall()) / 2.0 * 100.0,
            f1: (pos.f1() + neg.f1()) / 2.0 * 100.0,
            accuracy: pos.accuracy() * 100.0,
        }
    }
}

/// A point on a ROC curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RocPoint {
    pub fpr: f64,
    pub tpr: f64,
    pub threshold: f64,
}

/// Compute the ROC curve by sweeping a threshold over the sorted scores.
pub fn roc_curve(scores: &[f64], labels: &[bool]) -> Vec<RocPoint> {
    assert_eq!(scores.len(), labels.len());
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    let pos = labels.iter().filter(|&&l| l).count() as f64;
    let neg = labels.len() as f64 - pos;
    let mut curve = vec![RocPoint { fpr: 0.0, tpr: 0.0, threshold: f64::INFINITY }];
    let (mut tp, mut fp) = (0.0f64, 0.0f64);
    let mut i = 0;
    while i < order.len() {
        // Process ties at the same score together.
        let s = scores[order[i]];
        while i < order.len() && scores[order[i]] == s {
            if labels[order[i]] {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        curve.push(RocPoint {
            fpr: if neg > 0.0 { fp / neg } else { 0.0 },
            tpr: if pos > 0.0 { tp / pos } else { 0.0 },
            threshold: s,
        });
    }
    curve
}

/// Area under the ROC curve via the trapezoidal rule.
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> f64 {
    let curve = roc_curve(scores, labels);
    let mut auc = 0.0;
    for w in curve.windows(2) {
        auc += (w[1].fpr - w[0].fpr) * (w[0].tpr + w[1].tpr) / 2.0;
    }
    auc
}

/// Argmax over a slice; ties break to the lowest index.
pub fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let preds = [true, true, false, false, true];
        let labels = [true, false, false, true, true];
        let c = Confusion::from_preds(&preds, &labels);
        assert_eq!(c, Confusion { tp: 2, fp: 1, tn: 1, fn_: 1 });
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn perfect_and_degenerate_metrics() {
        let m = Metrics::binary(&[true, false], &[true, false]);
        assert_eq!(m.f1, 100.0);
        assert_eq!(m.accuracy, 100.0);
        // No positive predictions -> precision 0 but no NaN.
        let m = Metrics::binary(&[false, false], &[true, false]);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn auc_perfect_random_inverted() {
        let labels = [true, true, false, false];
        assert!((roc_auc(&[0.9, 0.8, 0.2, 0.1], &labels) - 1.0).abs() < 1e-12);
        assert!((roc_auc(&[0.1, 0.2, 0.8, 0.9], &labels)).abs() < 1e-12);
        // All scores equal -> AUC 0.5 (one big tie step).
        assert!((roc_auc(&[0.5, 0.5, 0.5, 0.5], &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn roc_curve_monotone() {
        let scores = [0.1, 0.4, 0.35, 0.8, 0.65, 0.2];
        let labels = [false, true, false, true, true, false];
        let curve = roc_curve(&scores, &labels);
        for w in curve.windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
        }
        let last = curve.last().unwrap();
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
    }

    #[test]
    fn argmax_ties_to_first() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }
}
