//! Persistent parameter storage for define-by-run models.
//!
//! A [`ParamStore`] owns the trainable tensors of a model. Each forward pass
//! creates a fresh [`tensor::Tape`]; a [`Ctx`] lazily inserts the parameters
//! that pass actually uses as tape leaves and, after `backward`, copies the
//! leaf gradients back into the store where an optimizer consumes them.

use rand::Rng;
use tensor::{Tape, Tensor, Var};

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamId(pub(crate) usize);

/// Owns model parameters and their accumulated gradients.
#[derive(Default)]
pub struct ParamStore {
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
    names: Vec<String>,
}

impl ParamStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter with an explicit initial value.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let (r, c) = value.shape();
        self.values.push(value);
        self.grads.push(Tensor::zeros(r, c));
        self.names.push(name.into());
        ParamId(self.values.len() - 1)
    }

    /// Xavier/Glorot-uniform initialisation: `U(-a, a)` with
    /// `a = sqrt(6 / (fan_in + fan_out))`.
    pub fn xavier(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        rng: &mut impl Rng,
    ) -> ParamId {
        let a = (6.0 / (rows + cols) as f32).sqrt();
        let t = Tensor::from_fn(rows, cols, |_, _| rng.gen_range(-a..a));
        self.add(name, t)
    }

    /// Zero-initialised parameter (biases).
    pub fn zeros(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> ParamId {
        self.add(name, Tensor::zeros(rows, cols))
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Look up a parameter by its registered name.
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.names.iter().position(|n| n == name).map(ParamId)
    }

    /// Iterate all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// Reset every accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        for g in &mut self.grads {
            for x in g.data_mut() {
                *x = 0.0;
            }
        }
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Global gradient L2 norm (for clipping / diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.grads.iter().map(|g| g.data().iter().map(|&x| x * x).sum::<f32>()).sum::<f32>().sqrt()
    }

    /// Scale all gradients so the global norm does not exceed `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in &mut self.grads {
                for x in g.data_mut() {
                    *x *= s;
                }
            }
        }
    }

    fn values_slice(&self) -> &[Tensor] {
        &self.values
    }

    pub(crate) fn apply<F: FnMut(&mut Tensor, &Tensor)>(&mut self, mut f: F) {
        for (v, g) in self.values.iter_mut().zip(self.grads.iter()) {
            f(v, g);
        }
    }
}

/// Per-forward-pass mapping from [`ParamId`]s to tape [`Var`]s.
pub struct Ctx {
    vars: Vec<Option<Var>>,
}

impl Ctx {
    pub fn new(store: &ParamStore) -> Self {
        Self { vars: vec![None; store.len()] }
    }

    /// Get (inserting on first use) the tape leaf for a parameter.
    pub fn var(&mut self, tape: &mut Tape, store: &ParamStore, id: ParamId) -> Var {
        if let Some(v) = self.vars[id.0] {
            return v;
        }
        let v = tape.leaf_copy(&store.values_slice()[id.0]);
        self.vars[id.0] = Some(v);
        v
    }

    /// After `tape.backward`, accumulate leaf gradients into the store.
    pub fn accumulate_grads(&self, tape: &Tape, store: &mut ParamStore) {
        for (i, slot) in self.vars.iter().enumerate() {
            if let Some(v) = slot {
                if let Some(g) = tape.grad(*v) {
                    store.grads[i].add_assign(g);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let id = store.xavier("w", 10, 20, &mut rng);
        let a = (6.0f32 / 30.0).sqrt();
        assert!(store.value(id).data().iter().all(|x| x.abs() <= a));
        assert!(store.value(id).data().iter().any(|x| x.abs() > 1e-4));
    }

    #[test]
    fn grad_roundtrip_through_ctx() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(2, 1, vec![1.0, 2.0]));
        let mut tape = Tape::new();
        let mut ctx = Ctx::new(&store);
        let wv = ctx.var(&mut tape, &store, w);
        let x = tape.leaf(Tensor::from_vec(1, 2, vec![3.0, 4.0]));
        let y = tape.matmul(x, wv);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        ctx.accumulate_grads(&tape, &mut store);
        assert_eq!(store.grad(w).data(), &[3.0, 4.0]);
        // Accumulation is additive across passes.
        ctx.accumulate_grads(&tape, &mut store);
        assert_eq!(store.grad(w).data(), &[6.0, 8.0]);
        store.zero_grad();
        assert_eq!(store.grad(w).data(), &[0.0, 0.0]);
    }

    #[test]
    fn clip_grad_norm_scales_down_only() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(1, 2));
        store.grads[w.0] = Tensor::from_vec(1, 2, vec![3.0, 4.0]); // norm 5
        store.clip_grad_norm(10.0);
        assert_eq!(store.grad(w).data(), &[3.0, 4.0]);
        store.clip_grad_norm(1.0);
        let n = store.grad_norm();
        assert!((n - 1.0).abs() < 1e-5);
    }
}
