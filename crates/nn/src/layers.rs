//! Reusable neural layers over the autodiff tape.

use crate::params::{Ctx, ParamId, ParamStore};
use rand::Rng;
use tensor::{Tape, Var};

/// Activation functions used throughout the paper's architecture.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Activation {
    /// Identity (no activation).
    None,
    Relu,
    /// LeakyReLU with the given negative slope (Eq. 6 uses 0.2 by convention).
    LeakyRelu(f32),
    /// ELU with the given alpha (Eq. 9 / Eq. 13).
    Elu(f32),
    Tanh,
    Sigmoid,
}

impl Activation {
    pub fn apply(self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Activation::None => x,
            Activation::Relu => tape.relu(x),
            Activation::LeakyRelu(s) => tape.leaky_relu(x, s),
            Activation::Elu(a) => tape.elu(x, a),
            Activation::Tanh => tape.tanh(x),
            Activation::Sigmoid => tape.sigmoid(x),
        }
    }
}

/// A dense layer `y = act(x @ W + b)`.
pub struct Linear {
    pub w: ParamId,
    pub b: ParamId,
    pub act: Activation,
}

impl Linear {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_in: usize,
        d_out: usize,
        act: Activation,
    ) -> Self {
        let w = store.xavier(format!("{name}.w"), d_in, d_out, rng);
        let b = store.zeros(format!("{name}.b"), 1, d_out);
        Self { w, b, act }
    }

    pub fn forward(&self, tape: &mut Tape, ctx: &mut Ctx, store: &ParamStore, x: Var) -> Var {
        let w = ctx.var(tape, store, self.w);
        let b = ctx.var(tape, store, self.b);
        let y = tape.linear(x, w, b);
        self.act.apply(tape, y)
    }
}

/// A multi-layer perceptron with a shared hidden activation and a linear head.
pub struct Mlp {
    pub layers: Vec<Linear>,
}

impl Mlp {
    /// `dims = [d_in, h1, ..., d_out]`; hidden layers use `act`, the final
    /// layer is linear (logits).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        dims: &[usize],
        act: Activation,
    ) -> Self {
        assert!(dims.len() >= 2, "MLP needs at least input and output dims");
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let a = if i + 2 == dims.len() { Activation::None } else { act };
            layers.push(Linear::new(store, rng, &format!("{name}.{i}"), dims[i], dims[i + 1], a));
        }
        Self { layers }
    }

    pub fn forward(&self, tape: &mut Tape, ctx: &mut Ctx, store: &ParamStore, mut x: Var) -> Var {
        for layer in &self.layers {
            x = layer.forward(tape, ctx, store, x);
        }
        x
    }
}

/// The GRU cell of the local dynamic encoder (Eqs. 15-18):
///
/// ```text
/// u_t = σ(U_t W_u + h_{t-1} V_u)
/// r_t = σ(U_t W_r + h_{t-1} V_r)
/// h̃_t = tanh(U_t W + (r_t ⊙ h_{t-1}) V)
/// h_t = (1 − u_t) ⊙ h_{t-1} + u_t ⊙ h̃_t
/// ```
///
/// Note the paper follows EvolveGCN in applying the candidate's `V` *after*
/// the reset gating; we implement exactly that form.
pub struct GruCell {
    pub w_u: ParamId,
    pub v_u: ParamId,
    pub w_r: ParamId,
    pub v_r: ParamId,
    pub w: ParamId,
    pub v: ParamId,
}

impl GruCell {
    pub fn new(store: &mut ParamStore, rng: &mut impl Rng, name: &str, dim: usize) -> Self {
        Self {
            w_u: store.xavier(format!("{name}.w_u"), dim, dim, rng),
            v_u: store.xavier(format!("{name}.v_u"), dim, dim, rng),
            w_r: store.xavier(format!("{name}.w_r"), dim, dim, rng),
            v_r: store.xavier(format!("{name}.v_r"), dim, dim, rng),
            w: store.xavier(format!("{name}.w"), dim, dim, rng),
            v: store.xavier(format!("{name}.v"), dim, dim, rng),
        }
    }

    /// One step: combine topological features `u_t` with the previous
    /// evolutionary features `h_prev`, both `(n, d)`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        ctx: &mut Ctx,
        store: &ParamStore,
        u_t: Var,
        h_prev: Var,
    ) -> Var {
        let w_u = ctx.var(tape, store, self.w_u);
        let v_u = ctx.var(tape, store, self.v_u);
        let w_r = ctx.var(tape, store, self.w_r);
        let v_r = ctx.var(tape, store, self.v_r);
        let w = ctx.var(tape, store, self.w);
        let v = ctx.var(tape, store, self.v);

        let a = tape.matmul(u_t, w_u);
        let b = tape.matmul(h_prev, v_u);
        let pre_u = tape.add(a, b);
        let update = tape.sigmoid(pre_u);

        let a = tape.matmul(u_t, w_r);
        let b = tape.matmul(h_prev, v_r);
        let pre_r = tape.add(a, b);
        let reset = tape.sigmoid(pre_r);

        let uw = tape.matmul(u_t, w);
        let gated_h = tape.mul(reset, h_prev);
        let gated = tape.matmul(gated_h, v);
        let pre_c = tape.add(uw, gated);
        let cand = tape.tanh(pre_c);

        let keep = tape.one_minus(update);
        let old = tape.mul(keep, h_prev);
        let new = tape.mul(update, cand);
        tape.add(old, new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::Tensor;

    #[test]
    fn linear_shapes_and_activation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, &mut rng, "l", 4, 3, Activation::Relu);
        let mut tape = Tape::new();
        let mut ctx = Ctx::new(&store);
        let x = tape.leaf(Tensor::from_fn(5, 4, |r, c| (r + c) as f32 - 3.0));
        let y = layer.forward(&mut tape, &mut ctx, &store, x);
        assert_eq!(tape.value(y).shape(), (5, 3));
        assert!(tape.value(y).data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn mlp_reduces_loss_on_xor() {
        // XOR is not linearly separable, so learning it proves the hidden
        // layer and backprop through the whole stack work.
        let mut rng = StdRng::seed_from_u64(42);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, &mut rng, "xor", &[2, 8, 2], Activation::Tanh);
        let mut opt = crate::optim::Adam::new(0.05);
        let xs = Tensor::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let targets = std::sync::Arc::new(vec![0usize, 1, 1, 0]);
        let mut first = f32::NAN;
        let mut last = f32::NAN;
        for epoch in 0..300 {
            store.zero_grad();
            let mut tape = Tape::new();
            let mut ctx = Ctx::new(&store);
            let x = tape.leaf(xs.clone());
            let logits = mlp.forward(&mut tape, &mut ctx, &store, x);
            let loss = tape.cross_entropy(logits, targets.clone());
            if epoch == 0 {
                first = tape.value(loss).item();
            }
            last = tape.value(loss).item();
            tape.backward(loss);
            ctx.accumulate_grads(&tape, &mut store);
            opt.step(&mut store);
        }
        assert!(last < first * 0.05, "loss {first} -> {last}");
        assert!(last < 0.1, "final loss too high: {last}");
    }

    #[test]
    fn gru_interpolates_between_old_and_candidate() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, &mut rng, "gru", 4);
        let mut tape = Tape::new();
        let mut ctx = Ctx::new(&store);
        let u = tape.leaf(Tensor::from_fn(2, 4, |r, c| (r as f32 - c as f32) * 0.1));
        let h = tape.leaf(Tensor::full(2, 4, 0.5));
        let out = cell.forward(&mut tape, &mut ctx, &store, u, h);
        assert_eq!(tape.value(out).shape(), (2, 4));
        // GRU output is a convex combination of h_prev (0.5) and tanh
        // candidate (|.| < 1), so it must stay in (-1, 1).
        assert!(tape.value(out).data().iter().all(|&v| v.abs() < 1.0));
    }
}
