//! # faults — deterministic fault injection for the DBG4ETH pipeline
//!
//! A fault *plan* is a comma-separated list of `kind@site[:index]` specs,
//! parsed once from the `DBG4ETH_FAULTS` environment variable (or installed
//! programmatically with [`set_plan`] from tests and harnesses):
//!
//! ```text
//! DBG4ETH_FAULTS=nan@gsg.encode:3,panic@par.task:7,corrupt@model.gsg.cal,drop@account:12
//! ```
//!
//! Injection points across the workspace (`par`, `eth-sim`, `features`,
//! `gnn`, `calib`, `boost`, `dbg4eth`) ask the plan whether a fault
//! [`fires`] at their *site* (a stable dotted name) and *logical index*
//! (task index, account index, …). Because matching is keyed on logical
//! indices — never on wall-clock order or which worker thread happened to
//! run a task — every failure mode is bit-for-bit reproducible at any
//! `DBG4ETH_THREADS`, which is what lets the chaos suite assert that
//! degradation touches exactly the targeted accounts.
//!
//! With no plan installed every probe is a single relaxed atomic load and
//! injection is provably inert: the helpers return their inputs unchanged.
//! Every fault that actually fires is recorded as an `obs` warning event
//! plus `faults.fired` / `faults.fired.<site>` counters, so injected chaos
//! is visible in the JSON run-report next to the degradations it caused.
//!
//! The five kinds and the degradation they exercise (see DESIGN.md,
//! "Failure modes & degradation"):
//!
//! | kind      | helper                      | typical site                |
//! |-----------|-----------------------------|-----------------------------|
//! | `nan`     | [`poison_f64`]              | `gsg.encode:3`, `sim.tx:0`  |
//! | `panic`   | [`maybe_panic`]             | `par.task:7`, `calib.apply` |
//! | `corrupt` | [`corrupts`] (byte flips)   | `model.gsg.cal`             |
//! | `drop`    | [`drops`]                   | `account:12`                |
//! | `stall`   | [`stalls`]                  | `serve.client:2`            |
//!
//! Every documented injection site is listed by [`sites`], so harnesses
//! (the `serve` daemon, the traffic replayer) can validate a plan at
//! startup instead of silently ignoring a typo'd site for a whole run.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Environment variable holding the fault plan for this process.
pub const FAULTS_ENV: &str = "DBG4ETH_FAULTS";

/// The five injectable failure modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Replace a produced value with `f64::NAN` ([`poison_f64`]).
    Nan,
    /// Panic at the injection point ([`maybe_panic`]).
    Panic,
    /// Flip bytes in a serialised artefact ([`corrupts`]).
    Corrupt,
    /// Drop the indexed item before it is processed ([`drops`]).
    Drop,
    /// Stall the indexed actor (slow client, sleeping worker; [`stalls`]).
    Stall,
}

impl FaultKind {
    pub const ALL: [FaultKind; 5] =
        [FaultKind::Nan, FaultKind::Panic, FaultKind::Corrupt, FaultKind::Drop, FaultKind::Stall];

    /// The spec keyword (`nan`, `panic`, `corrupt`, `drop`, `stall`).
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            FaultKind::Nan => "nan",
            FaultKind::Panic => "panic",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Drop => "drop",
            FaultKind::Stall => "stall",
        }
    }

    fn from_keyword(word: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.keyword() == word)
    }

    /// All spec keywords, comma-joined — the "expected one of" half of a
    /// parse error.
    fn keywords() -> String {
        let words: Vec<&str> = Self::ALL.iter().map(|k| k.keyword()).collect();
        words.join(", ")
    }
}

/// Every documented injection site in the workspace, in dotted-name order.
/// `model.*` covers the container sections (`model.config`, `model.gsg`,
/// `model.ldg`, `model.gsg.cal`, `model.ldg.cal`, `model.classifier`) plus
/// the `model.calib` alias that hits both calibrator sections at once.
///
/// Harnesses that take a plan from the environment ([`FAULTS_ENV`]) should
/// check each spec's site against this list at startup and refuse unknown
/// ones loudly — a typo'd site otherwise degrades a chaos run into a clean
/// run without anyone noticing.
#[must_use]
pub fn sites() -> &'static [&'static str] {
    &[
        "account",
        "boost.predict",
        "calib.apply",
        "calib.scale",
        "features.deep",
        "gnn.lower",
        "gsg.encode",
        "ingest.batch",
        "ingest.tx",
        "ldg.encode",
        "model.calib",
        "model.classifier",
        "model.config",
        "model.gsg",
        "model.gsg.cal",
        "model.ldg",
        "model.ldg.cal",
        "par.task",
        "serve.client",
        "serve.conn",
        "serve.frame",
        "serve.worker",
        "sim.tx",
    ]
}

/// One parsed `kind@site[:index]` spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    pub kind: FaultKind,
    /// Dotted injection-site name, e.g. `gsg.encode` or `model.gsg.cal`.
    pub site: String,
    /// Logical index the fault is pinned to; `None` matches every index.
    pub index: Option<usize>,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.kind.keyword(), self.site)?;
        match self.index {
            Some(i) => write!(f, ":{i}"),
            None => Ok(()),
        }
    }
}

/// A typed fault-spec parse failure. Parsing never panics: a malformed
/// `DBG4ETH_FAULTS` surfaces as one loud warning and an empty plan, so a
/// typo in a chaos run can never silently become a clean run *crash*.
/// Every variant carries `clause`, the 1-based position of the offending
/// `kind@site[:index]` item in the comma-separated list, so a long plan's
/// error message points at exactly the clause to fix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultSpecError {
    /// A spec with no `@` separator.
    MissingSite { spec: String, clause: usize },
    /// An unknown fault keyword before the `@`.
    UnknownKind { kind: String, clause: usize },
    /// An empty or whitespace site name.
    EmptySite { spec: String, clause: usize },
    /// A `:index` suffix that is not a non-negative integer.
    BadIndex { spec: String, index: String, clause: usize },
}

impl FaultSpecError {
    /// The 1-based position of the offending clause in the spec list.
    #[must_use]
    pub fn clause(&self) -> usize {
        match self {
            FaultSpecError::MissingSite { clause, .. }
            | FaultSpecError::UnknownKind { clause, .. }
            | FaultSpecError::EmptySite { clause, .. }
            | FaultSpecError::BadIndex { clause, .. } => *clause,
        }
    }
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpecError::MissingSite { spec, clause } => {
                write!(
                    f,
                    "clause {clause} '{spec}' has no '@site' part \
                     (expected kind@site[:index], e.g. nan@gsg.encode:3)"
                )
            }
            FaultSpecError::UnknownKind { kind, clause } => {
                write!(
                    f,
                    "clause {clause} has unknown fault kind '{kind}' (expected one of: {})",
                    FaultKind::keywords()
                )
            }
            FaultSpecError::EmptySite { spec, clause } => {
                write!(
                    f,
                    "clause {clause} '{spec}' has an empty site name (known sites: {})",
                    sites().join(", ")
                )
            }
            FaultSpecError::BadIndex { spec, index, clause } => {
                write!(f, "clause {clause} '{spec}' has a non-integer index '{index}'")
            }
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// A parsed, immutable fault plan.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Parse a comma-separated `kind@site[:index]` list. Whitespace around
    /// specs and empty items are ignored, so trailing commas are harmless.
    pub fn parse(spec: &str) -> Result<Self, FaultSpecError> {
        let mut faults = Vec::new();
        for (pos, item) in spec.split(',').enumerate() {
            let clause = pos + 1;
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let (kind, rest) = item
                .split_once('@')
                .ok_or_else(|| FaultSpecError::MissingSite { spec: item.to_string(), clause })?;
            let kind = FaultKind::from_keyword(kind.trim()).ok_or_else(|| {
                FaultSpecError::UnknownKind { kind: kind.trim().to_string(), clause }
            })?;
            let (site, index) = match rest.split_once(':') {
                Some((site, idx)) => {
                    let parsed =
                        idx.trim().parse::<usize>().map_err(|_| FaultSpecError::BadIndex {
                            spec: item.to_string(),
                            index: idx.trim().to_string(),
                            clause,
                        })?;
                    (site.trim(), Some(parsed))
                }
                None => (rest.trim(), None),
            };
            if site.is_empty() {
                return Err(FaultSpecError::EmptySite { spec: item.to_string(), clause });
            }
            faults.push(Fault { kind, site: site.to_string(), index });
        }
        Ok(Self { faults })
    }

    /// The sites named by this plan that are not in the documented
    /// [`sites`] list — what a harness should refuse (or at least shout
    /// about) at startup.
    #[must_use]
    pub fn unknown_sites(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for f in &self.faults {
            if !sites().contains(&f.site.as_str()) && !out.contains(&f.site.as_str()) {
                out.push(&f.site);
            }
        }
        out
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The parsed specs, in spec order.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Does this plan contain a fault matching `(kind, site, index)`?
    /// A spec without an index matches every index probed at its site.
    #[must_use]
    pub fn matches(&self, kind: FaultKind, site: &str, index: Option<usize>) -> bool {
        self.faults
            .iter()
            .any(|f| f.kind == kind && f.site == site && (f.index.is_none() || f.index == index))
    }
}

// --- the installed plan -----------------------------------------------------

const STATE_UNSET: u8 = u8::MAX;
const STATE_OFF: u8 = 0;
const STATE_ON: u8 = 1;

/// One relaxed load on the hot path; `STATE_UNSET` until the env var has
/// been consulted once.
static ACTIVE: AtomicU8 = AtomicU8::new(STATE_UNSET);

fn plan_slot() -> &'static Mutex<FaultPlan> {
    static PLAN: OnceLock<Mutex<FaultPlan>> = OnceLock::new();
    PLAN.get_or_init(|| Mutex::new(FaultPlan::default()))
}

fn init_from_env() -> bool {
    let plan = match std::env::var(FAULTS_ENV) {
        Ok(spec) if !spec.trim().is_empty() => match FaultPlan::parse(&spec) {
            Ok(plan) => plan,
            Err(e) => {
                obs::warn!("faults", "ignoring malformed {FAULTS_ENV}='{spec}': {e}");
                FaultPlan::default()
            }
        },
        _ => FaultPlan::default(),
    };
    let on = !plan.is_empty();
    *plan_slot().lock().unwrap_or_else(std::sync::PoisonError::into_inner) = plan;
    ACTIVE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Release);
    on
}

/// Whether any fault plan is installed. The no-plan fast path every
/// injection point pays: one relaxed atomic load.
#[inline]
#[must_use]
pub fn active() -> bool {
    match ACTIVE.load(Ordering::Relaxed) {
        STATE_OFF => false,
        STATE_UNSET => init_from_env(),
        _ => true,
    }
}

/// Install (or with `None` clear) the process-wide fault plan, overriding
/// `DBG4ETH_FAULTS`. Tests and harnesses drive the chaos matrix through
/// this; clearing restores the fault-free fast path.
pub fn set_plan(plan: Option<FaultPlan>) {
    let plan = plan.unwrap_or_default();
    let on = !plan.is_empty();
    *plan_slot().lock().unwrap_or_else(std::sync::PoisonError::into_inner) = plan;
    ACTIVE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Release);
}

/// A copy of the currently installed plan (empty when faults are inert).
#[must_use]
pub fn plan() -> FaultPlan {
    if !active() {
        return FaultPlan::default();
    }
    plan_slot().lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
}

fn record_fired(kind: FaultKind, site: &str, index: Option<usize>) {
    obs::counter_add("faults.fired", 1);
    // Per-site counters let the run-report attribute degradation to the
    // exact injection point that caused it.
    obs::counter_add(&format!("faults.fired.{site}"), 1);
    match index {
        Some(i) => obs::warn!("faults", "injected {}@{site}:{i}", kind.keyword()),
        None => obs::warn!("faults", "injected {}@{site}", kind.keyword()),
    }
}

/// Does a fault of `kind` fire at `(site, index)` under the installed plan?
/// Fired faults are counted and logged; with no plan this is one atomic
/// load and `false`.
#[must_use]
pub fn fires(kind: FaultKind, site: &str, index: Option<usize>) -> bool {
    if !active() {
        return false;
    }
    let hit = plan_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .matches(kind, site, index);
    if hit {
        record_fired(kind, site, index);
    }
    hit
}

/// Pass `value` through, replaced by `f64::NAN` when a `nan` fault fires.
#[inline]
#[must_use]
pub fn poison_f64(site: &str, index: Option<usize>, value: f64) -> f64 {
    if fires(FaultKind::Nan, site, index) {
        f64::NAN
    } else {
        value
    }
}

/// [`poison_f64`] for `f32` values (node features travel as `f32`).
#[inline]
#[must_use]
pub fn poison_f32(site: &str, index: Option<usize>, value: f32) -> f32 {
    if fires(FaultKind::Nan, site, index) {
        f32::NAN
    } else {
        value
    }
}

/// Panic with a recognisable `injected fault:` message when a `panic`
/// fault fires. Callers that isolate panics (`par::try_par_map_indices`)
/// surface the message in their typed `TaskPanicked` errors.
pub fn maybe_panic(site: &str, index: Option<usize>) {
    if fires(FaultKind::Panic, site, index) {
        match index {
            Some(i) => panic!("injected fault: panic@{site}:{i}"),
            None => panic!("injected fault: panic@{site}"),
        }
    }
}

/// Should the item at `(site, index)` be dropped before processing?
#[inline]
#[must_use]
pub fn drops(site: &str, index: Option<usize>) -> bool {
    fires(FaultKind::Drop, site, index)
}

/// Does a `corrupt` fault target `site`? The caller owns the byte flipping
/// (e.g. `model_io::corrupt_section`), since only it knows the artefact's
/// framing.
#[inline]
#[must_use]
pub fn corrupts(site: &str) -> bool {
    fires(FaultKind::Corrupt, site, None)
}

/// Should the actor at `(site, index)` stall? The caller owns the sleeping
/// (a replayer client dribbling its frame one byte at a time, a serve
/// worker holding a request past its deadline) — only it knows what "slow"
/// means at its site.
#[inline]
#[must_use]
pub fn stalls(site: &str, index: Option<usize>) -> bool {
    fires(FaultKind::Stall, site, index)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The plan is process-global and cargo runs tests concurrently, so
    /// every test that installs or asserts on the live plan serializes
    /// through this lock. Pure parsing tests don't need it.
    fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn parses_the_readme_example() {
        let plan = FaultPlan::parse(
            "nan@gsg.encode:3,panic@par.task:7,corrupt@model.gsg.cal,drop@account:12",
        )
        .unwrap();
        assert_eq!(plan.faults().len(), 4);
        assert!(plan.matches(FaultKind::Nan, "gsg.encode", Some(3)));
        assert!(!plan.matches(FaultKind::Nan, "gsg.encode", Some(4)));
        assert!(plan.matches(FaultKind::Panic, "par.task", Some(7)));
        assert!(plan.matches(FaultKind::Corrupt, "model.gsg.cal", None));
        assert!(plan.matches(FaultKind::Drop, "account", Some(12)));
    }

    #[test]
    fn indexless_spec_matches_every_index() {
        let plan = FaultPlan::parse("nan@calib.scale").unwrap();
        assert!(plan.matches(FaultKind::Nan, "calib.scale", Some(0)));
        assert!(plan.matches(FaultKind::Nan, "calib.scale", Some(999)));
        assert!(plan.matches(FaultKind::Nan, "calib.scale", None));
        // Indexed specs do not match indexless probes.
        let plan = FaultPlan::parse("nan@calib.scale:2").unwrap();
        assert!(!plan.matches(FaultKind::Nan, "calib.scale", None));
    }

    #[test]
    fn whitespace_and_trailing_commas_are_tolerated() {
        let plan = FaultPlan::parse(" drop@account:1 , panic@par.task ,, ").unwrap();
        assert_eq!(plan.faults().len(), 2);
    }

    #[test]
    fn empty_spec_is_an_empty_plan() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  ").unwrap().is_empty());
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        assert!(matches!(
            FaultPlan::parse("nan-gsg.encode"),
            Err(FaultSpecError::MissingSite { .. })
        ));
        assert!(matches!(
            FaultPlan::parse("explode@par.task"),
            Err(FaultSpecError::UnknownKind { .. })
        ));
        assert!(matches!(FaultPlan::parse("nan@"), Err(FaultSpecError::EmptySite { .. })));
        assert!(matches!(FaultPlan::parse("nan@x:alpha"), Err(FaultSpecError::BadIndex { .. })));
        // Errors render, name the offending clause, and list the valid kinds.
        let e = FaultPlan::parse("explode@x").unwrap_err();
        assert!(e.to_string().contains("explode"));
        assert!(e.to_string().contains("clause 1"));
        assert!(e.to_string().contains("stall"), "valid kinds listed: {e}");
    }

    #[test]
    fn parse_errors_point_at_the_offending_clause() {
        let e = FaultPlan::parse("drop@account:1,nan@gsg.encode,boom@par.task").unwrap_err();
        assert_eq!(e.clause(), 3);
        assert!(matches!(e, FaultSpecError::UnknownKind { ref kind, .. } if kind == "boom"));
        let e = FaultPlan::parse("drop@account:1,nan@x:seven").unwrap_err();
        assert_eq!(e.clause(), 2);
        assert!(e.to_string().contains("clause 2"));
    }

    #[test]
    fn stall_kind_parses_and_fires() {
        let _guard = global_lock();
        let plan = FaultPlan::parse("stall@serve.client:2").unwrap();
        assert!(plan.matches(FaultKind::Stall, "serve.client", Some(2)));
        set_plan(Some(plan));
        assert!(stalls("serve.client", Some(2)));
        assert!(!stalls("serve.client", Some(1)));
        set_plan(None);
        assert!(!stalls("serve.client", Some(2)));
    }

    #[test]
    fn sites_cover_the_serving_path_and_flag_unknowns() {
        for site in [
            "serve.conn",
            "serve.frame",
            "serve.worker",
            "serve.client",
            "par.task",
            "ingest.tx",
            "ingest.batch",
        ] {
            assert!(sites().contains(&site), "{site} missing from sites()");
        }
        let plan = FaultPlan::parse("drop@serve.conn:0,nan@gsg.encod:1,panic@typo.site").unwrap();
        assert_eq!(plan.unknown_sites(), ["gsg.encod", "typo.site"]);
        assert!(FaultPlan::parse("drop@serve.conn").unwrap().unknown_sites().is_empty());
    }

    #[test]
    fn specs_round_trip_through_display() {
        for spec in ["nan@gsg.encode:3", "corrupt@model.gsg.cal", "drop@account:12"] {
            let plan = FaultPlan::parse(spec).unwrap();
            assert_eq!(plan.faults()[0].to_string(), spec);
        }
    }

    #[test]
    fn helpers_are_inert_without_a_plan() {
        let _guard = global_lock();
        set_plan(None);
        assert!(!active());
        assert_eq!(poison_f64("gsg.encode", Some(0), 1.5), 1.5);
        assert_eq!(poison_f32("features.deep", None, 2.5), 2.5);
        assert!(!drops("account", Some(0)));
        assert!(!corrupts("model.gsg.cal"));
        maybe_panic("par.task", Some(0)); // must not panic
    }

    #[test]
    fn installed_plan_fires_and_clears() {
        let _guard = global_lock();
        set_plan(Some(FaultPlan::parse("nan@site.a:1,drop@site.b").unwrap()));
        assert!(active());
        assert!(poison_f64("site.a", Some(1), 0.0).is_nan());
        assert_eq!(poison_f64("site.a", Some(2), 0.25), 0.25);
        assert!(drops("site.b", Some(7)));
        set_plan(None);
        assert!(!active());
        assert_eq!(poison_f64("site.a", Some(1), 0.0), 0.0);
    }

    #[test]
    fn injected_panic_carries_the_site() {
        let _guard = global_lock();
        set_plan(Some(FaultPlan::parse("panic@par.task:3").unwrap()));
        let err = std::panic::catch_unwind(|| maybe_panic("par.task", Some(3))).unwrap_err();
        set_plan(None);
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert_eq!(msg, "injected fault: panic@par.task:3");
    }
}
