//! Property-based tests for the walk/embedding stack.

use embed::{mean_pool, node2vec_walks, skipgram, uniform_walks, SkipGramConfig, WalkConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Arbitrary undirected adjacency lists (symmetrised).
fn adjacency(n: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec((0..n, 0..n), 0..30).prop_map(move |edges| {
        let mut adj = vec![Vec::new(); n];
        for (u, v) in edges {
            if u != v {
                adj[u].push(v);
                adj[v].push(u);
            }
        }
        for l in &mut adj {
            l.sort_unstable();
            l.dedup();
        }
        adj
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Walks only traverse existing edges and never exceed the length cap.
    #[test]
    fn uniform_walks_follow_edges(adj in adjacency(8), len in 2usize..10) {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = WalkConfig { walk_length: len, walks_per_node: 2 };
        for walk in uniform_walks(&adj, cfg, &mut rng) {
            prop_assert!(walk.len() <= len && !walk.is_empty());
            for w in walk.windows(2) {
                prop_assert!(adj[w[0]].contains(&w[1]));
            }
        }
    }

    /// Node2Vec obeys the same validity rules for any p, q.
    #[test]
    fn node2vec_walks_follow_edges(
        adj in adjacency(8),
        p in 0.1f64..10.0,
        q in 0.1f64..10.0,
    ) {
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = WalkConfig { walk_length: 6, walks_per_node: 2 };
        for walk in node2vec_walks(&adj, p, q, cfg, &mut rng) {
            for w in walk.windows(2) {
                prop_assert!(adj[w[0]].contains(&w[1]));
            }
        }
    }

    /// Skip-gram always yields finite embeddings of the requested size.
    #[test]
    fn skipgram_output_finite(adj in adjacency(6), dim in 2usize..12) {
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = WalkConfig { walk_length: 5, walks_per_node: 2 };
        let walks = uniform_walks(&adj, cfg, &mut rng);
        let sg_cfg = SkipGramConfig { dim, epochs: 1, ..Default::default() };
        let emb = skipgram(&walks, 6, sg_cfg, &mut rng);
        prop_assert_eq!(emb.len(), 6);
        for e in &emb {
            prop_assert_eq!(e.len(), dim);
            prop_assert!(e.iter().all(|v| v.is_finite()));
        }
        let pooled = mean_pool(&emb);
        prop_assert_eq!(pooled.len(), dim);
    }
}
