//! Random-walk corpus generation: uniform walks (DeepWalk), p/q-biased
//! second-order walks (Node2Vec) and amount/timestamp-biased walks
//! (Trans2Vec).

use eth_graph::Subgraph;
use rand::Rng;
use std::collections::HashMap;

/// Walk-corpus hyper-parameters (the paper sets walk length 30 and 200
/// walks per node for the embedding baselines).
#[derive(Clone, Copy, Debug)]
pub struct WalkConfig {
    pub walk_length: usize,
    pub walks_per_node: usize,
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self { walk_length: 30, walks_per_node: 10 }
    }
}

/// Sample an index proportionally to `weights` (assumed non-negative, not
/// all zero — falls back to uniform otherwise).
fn weighted_choice(weights: &[f64], rng: &mut impl Rng) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut t = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if t < w {
            return i;
        }
        t -= w;
    }
    weights.len() - 1
}

/// Uniform random walks over an undirected adjacency list (DeepWalk).
pub fn uniform_walks(
    adj: &[Vec<usize>],
    config: WalkConfig,
    rng: &mut impl Rng,
) -> Vec<Vec<usize>> {
    let mut walks = Vec::new();
    for start in 0..adj.len() {
        for _ in 0..config.walks_per_node {
            let mut walk = Vec::with_capacity(config.walk_length);
            let mut cur = start;
            walk.push(cur);
            for _ in 1..config.walk_length {
                if adj[cur].is_empty() {
                    break;
                }
                cur = adj[cur][rng.gen_range(0..adj[cur].len())];
                walk.push(cur);
            }
            walks.push(walk);
        }
    }
    walks
}

/// Node2Vec second-order biased walks: returning to the previous node is
/// weighted `1/p`, staying in its neighbourhood `1`, exploring outward `1/q`.
pub fn node2vec_walks(
    adj: &[Vec<usize>],
    p: f64,
    q: f64,
    config: WalkConfig,
    rng: &mut impl Rng,
) -> Vec<Vec<usize>> {
    let neighbour_sets: Vec<std::collections::HashSet<usize>> =
        adj.iter().map(|l| l.iter().copied().collect()).collect();
    let mut walks = Vec::new();
    for start in 0..adj.len() {
        for _ in 0..config.walks_per_node {
            let mut walk = Vec::with_capacity(config.walk_length);
            walk.push(start);
            let mut prev: Option<usize> = None;
            let mut cur = start;
            for _ in 1..config.walk_length {
                if adj[cur].is_empty() {
                    break;
                }
                let weights: Vec<f64> = adj[cur]
                    .iter()
                    .map(|&next| match prev {
                        None => 1.0,
                        Some(pr) if next == pr => 1.0 / p,
                        Some(pr) if neighbour_sets[pr].contains(&next) => 1.0,
                        Some(_) => 1.0 / q,
                    })
                    .collect();
                let k = weighted_choice(&weights, rng);
                prev = Some(cur);
                cur = adj[cur][k];
                walk.push(cur);
            }
            walks.push(walk);
        }
    }
    walks
}

/// Trans2Vec-style walks over a transaction subgraph: the transition
/// probability to a neighbour mixes the (normalised) transferred amount and
/// timestamp recency with exponent `alpha ∈ [0, 1]`
/// (`alpha = 1` → amount-only, `alpha = 0` → time-only).
pub fn trans2vec_walks(
    graph: &Subgraph,
    alpha: f64,
    config: WalkConfig,
    rng: &mut impl Rng,
) -> Vec<Vec<usize>> {
    let n = graph.n();
    // Undirected weighted view: amount and most-recent timestamp per pair.
    let mut amount: HashMap<(usize, usize), f64> = HashMap::new();
    let mut latest: HashMap<(usize, usize), u64> = HashMap::new();
    for t in &graph.txs {
        let key = (t.src.min(t.dst), t.src.max(t.dst));
        *amount.entry(key).or_insert(0.0) += t.value;
        let e = latest.entry(key).or_insert(0);
        *e = (*e).max(t.timestamp);
    }
    let mut adj: Vec<Vec<(usize, f64, u64)>> = vec![Vec::new(); n];
    for (&(u, v), &a) in &amount {
        if u == v {
            continue;
        }
        let ts = latest[&(u, v)];
        adj[u].push((v, a, ts));
        adj[v].push((u, a, ts));
    }
    let t_max = graph.txs.iter().map(|t| t.timestamp).max().unwrap_or(0) as f64;
    let t_min = graph.txs.iter().map(|t| t.timestamp).min().unwrap_or(0) as f64;
    let t_span = (t_max - t_min).max(1.0);

    let mut walks = Vec::new();
    for start in 0..n {
        for _ in 0..config.walks_per_node {
            let mut walk = Vec::with_capacity(config.walk_length);
            let mut cur = start;
            walk.push(cur);
            for _ in 1..config.walk_length {
                if adj[cur].is_empty() {
                    break;
                }
                let weights: Vec<f64> = adj[cur]
                    .iter()
                    .map(|&(_, a, ts)| {
                        let aw = (1.0 + a).ln().max(1e-9);
                        let tw = (0.1 + (ts as f64 - t_min) / t_span).max(1e-9);
                        aw.powf(alpha) * tw.powf(1.0 - alpha)
                    })
                    .collect();
                let k = weighted_choice(&weights, rng);
                cur = adj[cur][k].0;
                walk.push(cur);
            }
            walks.push(walk);
        }
    }
    walks
}

#[cfg(test)]
mod tests {
    use super::*;
    use eth_graph::{AccountKind, LocalTx};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path_adj() -> Vec<Vec<usize>> {
        vec![vec![1], vec![0, 2], vec![1]]
    }

    #[test]
    fn uniform_walks_have_expected_count_and_validity() {
        let adj = path_adj();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = WalkConfig { walk_length: 5, walks_per_node: 3 };
        let walks = uniform_walks(&adj, cfg, &mut rng);
        assert_eq!(walks.len(), 9);
        for w in &walks {
            assert!(w.len() <= 5 && !w.is_empty());
            for pair in w.windows(2) {
                assert!(adj[pair[0]].contains(&pair[1]), "invalid step {pair:?}");
            }
        }
    }

    #[test]
    fn isolated_node_walks_are_singletons() {
        let adj = vec![vec![1], vec![0], vec![]];
        let mut rng = StdRng::seed_from_u64(2);
        let walks = uniform_walks(&adj, WalkConfig { walk_length: 4, walks_per_node: 2 }, &mut rng);
        for w in walks.iter().filter(|w| w[0] == 2) {
            assert_eq!(w.len(), 1);
        }
    }

    #[test]
    fn node2vec_low_p_revisits_more() {
        // On a path graph, small p (return-heavy) should bounce back and
        // forth more than large p.
        let adj = vec![vec![1], vec![0, 2], vec![1, 3], vec![2, 4], vec![3]];
        let cfg = WalkConfig { walk_length: 20, walks_per_node: 30 };
        let revisit_rate = |p: f64| {
            let mut rng = StdRng::seed_from_u64(3);
            let walks = node2vec_walks(&adj, p, 1.0, cfg, &mut rng);
            let mut revisits = 0usize;
            let mut steps = 0usize;
            for w in &walks {
                for win in w.windows(3) {
                    steps += 1;
                    if win[0] == win[2] {
                        revisits += 1;
                    }
                }
            }
            revisits as f64 / steps.max(1) as f64
        };
        assert!(revisit_rate(0.1) > revisit_rate(10.0));
    }

    #[test]
    fn trans2vec_prefers_heavy_edges() {
        // Star 0-{1,2}: edge to 1 carries 1000x the value of edge to 2.
        let g = Subgraph::from_parts(
            vec![0, 1, 2],
            vec![AccountKind::Eoa; 3],
            vec![
                LocalTx {
                    src: 0,
                    dst: 1,
                    value: 1000.0,
                    timestamp: 10,
                    fee: 0.0,
                    contract_call: false,
                },
                LocalTx {
                    src: 0,
                    dst: 2,
                    value: 0.01,
                    timestamp: 10,
                    fee: 0.0,
                    contract_call: false,
                },
            ],
            None,
        );
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = WalkConfig { walk_length: 2, walks_per_node: 300 };
        let walks = trans2vec_walks(&g, 1.0, cfg, &mut rng);
        let to1 = walks.iter().filter(|w| w[0] == 0 && w.get(1) == Some(&1)).count();
        let to2 = walks.iter().filter(|w| w[0] == 0 && w.get(1) == Some(&2)).count();
        assert!(to1 > to2 * 2, "to1 {to1}, to2 {to2}");
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[weighted_choice(&[1.0, 0.0, 9.0], &mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }
}
