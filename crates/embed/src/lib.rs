//! # embed — random-walk graph embeddings
//!
//! The graph-embedding baselines of Table III: walk corpora
//! ([`uniform_walks`] for DeepWalk, [`node2vec_walks`], and the
//! amount/timestamp-biased [`trans2vec_walks`]) trained with skip-gram
//! negative sampling ([`skipgram`]), mean-pooled into graph embeddings.

mod walks;
mod word2vec;

pub use walks::{node2vec_walks, trans2vec_walks, uniform_walks, WalkConfig};
pub use word2vec::{mean_pool, skipgram, SkipGramConfig};
