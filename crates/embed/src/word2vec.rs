//! Skip-gram with negative sampling (Mikolov et al., 2013) over walk
//! corpora — the embedding learner behind DeepWalk / Node2Vec / Trans2Vec.

use rand::Rng;

/// Skip-gram hyper-parameters (the paper uses embedding dimension 64).
#[derive(Clone, Copy, Debug)]
pub struct SkipGramConfig {
    pub dim: usize,
    pub window: usize,
    pub negatives: usize,
    pub epochs: usize,
    pub lr: f32,
}

impl Default for SkipGramConfig {
    fn default() -> Self {
        Self { dim: 64, window: 5, negatives: 5, epochs: 2, lr: 0.025 }
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Train node embeddings on a walk corpus. Returns an `n_nodes x dim`
/// embedding table (input vectors).
pub fn skipgram(
    walks: &[Vec<usize>],
    n_nodes: usize,
    config: SkipGramConfig,
    rng: &mut impl Rng,
) -> Vec<Vec<f32>> {
    let d = config.dim;
    let scale = 0.5 / d as f32;
    let mut emb: Vec<Vec<f32>> =
        (0..n_nodes).map(|_| (0..d).map(|_| rng.gen_range(-scale..scale)).collect()).collect();
    let mut ctx: Vec<Vec<f32>> = vec![vec![0.0; d]; n_nodes];

    // Unigram^0.75 negative-sampling table.
    let mut freq = vec![0.0f64; n_nodes];
    for w in walks {
        for &u in w {
            freq[u] += 1.0;
        }
    }
    let weights: Vec<f64> = freq.iter().map(|&f| f.powf(0.75)).collect();
    let total: f64 = weights.iter().sum();
    let sample_negative = |rng: &mut dyn rand::RngCore| -> usize {
        if total <= 0.0 {
            return 0;
        }
        let mut t = rng.gen_range(0.0..total);
        for (i, &w) in weights.iter().enumerate() {
            if t < w {
                return i;
            }
            t -= w;
        }
        n_nodes - 1
    };

    let mut grad = vec![0.0f32; d];
    for _ in 0..config.epochs {
        for walk in walks {
            for (pos, &center) in walk.iter().enumerate() {
                let lo = pos.saturating_sub(config.window);
                let hi = (pos + config.window + 1).min(walk.len());
                for (other, &target) in walk.iter().enumerate().take(hi).skip(lo) {
                    if other == pos {
                        continue;
                    }
                    grad.iter_mut().for_each(|g| *g = 0.0);
                    // Positive pair.
                    {
                        let dot: f32 =
                            emb[center].iter().zip(&ctx[target]).map(|(&a, &b)| a * b).sum();
                        let err = sigmoid(dot) - 1.0;
                        for k in 0..d {
                            grad[k] += err * ctx[target][k];
                            ctx[target][k] -= config.lr * err * emb[center][k];
                        }
                    }
                    // Negative samples.
                    for _ in 0..config.negatives {
                        let neg = sample_negative(rng);
                        if neg == target {
                            continue;
                        }
                        let dot: f32 =
                            emb[center].iter().zip(&ctx[neg]).map(|(&a, &b)| a * b).sum();
                        let err = sigmoid(dot);
                        for k in 0..d {
                            grad[k] += err * ctx[neg][k];
                            ctx[neg][k] -= config.lr * err * emb[center][k];
                        }
                    }
                    for k in 0..d {
                        emb[center][k] -= config.lr * grad[k];
                    }
                }
            }
        }
    }
    emb
}

/// Mean-pool node embeddings into one graph embedding (the paper uses
/// average pooling for the embedding baselines).
pub fn mean_pool(embeddings: &[Vec<f32>]) -> Vec<f32> {
    if embeddings.is_empty() {
        return Vec::new();
    }
    let d = embeddings[0].len();
    let mut out = vec![0.0f32; d];
    for e in embeddings {
        for (o, &x) in out.iter_mut().zip(e) {
            *o += x;
        }
    }
    let n = embeddings.len() as f32;
    for o in &mut out {
        *o /= n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cosine(a: &[f32], b: &[f32]) -> f32 {
        let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        dot / (na * nb).max(1e-12)
    }

    #[test]
    fn co_occurring_nodes_become_similar() {
        // Two disjoint cliques {0,1,2} and {3,4,5}: walks never cross, so
        // within-clique similarity must beat cross-clique similarity.
        let mut walks = Vec::new();
        for _ in 0..200 {
            walks.push(vec![0, 1, 2, 1, 0, 2]);
            walks.push(vec![3, 4, 5, 4, 3, 5]);
        }
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = SkipGramConfig { dim: 16, epochs: 3, ..Default::default() };
        let emb = skipgram(&walks, 6, cfg, &mut rng);
        let within = cosine(&emb[0], &emb[1]);
        let across = cosine(&emb[0], &emb[4]);
        assert!(within > across + 0.2, "within {within} not ahead of across {across}");
    }

    #[test]
    fn embeddings_have_requested_dim() {
        let walks = vec![vec![0, 1], vec![1, 0]];
        let mut rng = StdRng::seed_from_u64(1);
        let emb = skipgram(
            &walks,
            2,
            SkipGramConfig { dim: 7, epochs: 1, ..Default::default() },
            &mut rng,
        );
        assert_eq!(emb.len(), 2);
        assert!(emb.iter().all(|e| e.len() == 7));
    }

    #[test]
    fn mean_pool_averages() {
        let embs = vec![vec![1.0, 3.0], vec![3.0, 5.0]];
        assert_eq!(mean_pool(&embs), vec![2.0, 4.0]);
        assert!(mean_pool(&[]).is_empty());
    }
}
