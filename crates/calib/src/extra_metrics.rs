//! Additional calibration-assessment metrics.
//!
//! The paper notes (Section V-B2) that ECE has weaknesses — it cannot
//! capture the variance of predicted values — and that "additional
//! calibration assessment metrics could be investigated in subsequent
//! work". This module provides them: maximum calibration error (MCE), the
//! Brier score and its calibration/refinement decomposition.

use crate::ece::reliability_diagram;

/// Maximum calibration error: the worst confidence-accuracy gap over
/// occupied bins (Guo et al., 2017). More sensitive to isolated
/// badly-calibrated regions than ECE's occupancy-weighted mean.
pub fn mce(scores: &[f64], labels: &[bool], n_bins: usize) -> f64 {
    reliability_diagram(scores, labels, n_bins)
        .iter()
        .filter(|b| b.count > 0)
        .map(|b| (b.accuracy - b.confidence).abs())
        .fold(0.0, f64::max)
}

/// Brier score: mean squared error between predicted probability and the
/// 0/1 outcome. Strictly proper, so it rewards both calibration and
/// discrimination.
pub fn brier(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    if scores.is_empty() {
        return 0.0;
    }
    scores
        .iter()
        .zip(labels)
        .map(|(&p, &y)| {
            let o = if y { 1.0 } else { 0.0 };
            (p - o) * (p - o)
        })
        .sum::<f64>()
        / scores.len() as f64
}

/// Murphy decomposition of the Brier score over `n_bins` probability bins:
/// `brier = reliability − resolution + uncertainty`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BrierDecomposition {
    /// Calibration term (lower is better).
    pub reliability: f64,
    /// Discrimination term (higher is better).
    pub resolution: f64,
    /// Outcome base-rate entropy term `ō(1−ō)` (data property).
    pub uncertainty: f64,
}

impl BrierDecomposition {
    /// Recompose the Brier score.
    pub fn brier(&self) -> f64 {
        self.reliability - self.resolution + self.uncertainty
    }
}

/// Compute the Murphy decomposition with equal-width probability bins.
pub fn brier_decomposition(scores: &[f64], labels: &[bool], n_bins: usize) -> BrierDecomposition {
    assert_eq!(scores.len(), labels.len());
    assert!(n_bins > 0);
    let n = scores.len();
    if n == 0 {
        return BrierDecomposition { reliability: 0.0, resolution: 0.0, uncertainty: 0.0 };
    }
    let base_rate = labels.iter().filter(|&&y| y).count() as f64 / n as f64;
    let mut bin_p = vec![0.0f64; n_bins];
    let mut bin_o = vec![0.0f64; n_bins];
    let mut bin_n = vec![0usize; n_bins];
    for (&p, &y) in scores.iter().zip(labels) {
        let b = ((p.clamp(0.0, 1.0) * n_bins as f64) as usize).min(n_bins - 1);
        bin_p[b] += p;
        bin_o[b] += if y { 1.0 } else { 0.0 };
        bin_n[b] += 1;
    }
    let mut reliability = 0.0;
    let mut resolution = 0.0;
    for b in 0..n_bins {
        if bin_n[b] == 0 {
            continue;
        }
        let nk = bin_n[b] as f64;
        let pk = bin_p[b] / nk;
        let ok = bin_o[b] / nk;
        reliability += nk / n as f64 * (pk - ok) * (pk - ok);
        resolution += nk / n as f64 * (ok - base_rate) * (ok - base_rate);
    }
    BrierDecomposition { reliability, resolution, uncertainty: base_rate * (1.0 - base_rate) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brier_perfect_and_worst() {
        assert_eq!(brier(&[1.0, 0.0], &[true, false]), 0.0);
        assert_eq!(brier(&[0.0, 1.0], &[true, false]), 1.0);
        assert_eq!(brier(&[], &[]), 0.0);
    }

    #[test]
    fn brier_constant_half_is_quarter() {
        let scores = vec![0.5; 10];
        let labels: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        assert!((brier(&scores, &labels) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mce_reflects_worst_bin_while_ece_dilutes_it() {
        // Bin at confidence ~0.99 is perfect (10 samples); bin at ~0.65 is
        // always wrong (2 samples). MCE picks up the 0.65 gap in full.
        let mut scores = vec![0.99; 10];
        let mut labels = vec![true; 10];
        scores.extend(vec![0.65; 2]);
        labels.extend(vec![false; 2]);
        let m = mce(&scores, &labels, 10);
        assert!(m > 0.6, "mce = {m}");
        let e = crate::ece::ece(&scores, &labels, 10);
        assert!(e < m, "ece {e} should be diluted below mce {m}");
    }

    #[test]
    fn mce_zero_for_perfect_predictions() {
        let scores = vec![1.0, 1.0, 0.0];
        let labels = vec![true, true, false];
        assert!(mce(&scores, &labels, 10) < 1e-12);
    }

    #[test]
    fn decomposition_recomposes_brier() {
        // With per-bin-constant predictions the decomposition is exact.
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for i in 0..50 {
            scores.push(0.85);
            labels.push(i % 10 < 7);
            scores.push(0.15);
            labels.push(i % 10 < 2);
        }
        let d = brier_decomposition(&scores, &labels, 10);
        let b = brier(&scores, &labels);
        assert!((d.brier() - b).abs() < 1e-9, "decomposition {} vs direct {}", d.brier(), b);
        assert!(d.reliability >= 0.0 && d.resolution >= 0.0);
        assert!((d.uncertainty - 0.45 * 0.55).abs() < 1e-9);
    }

    #[test]
    fn resolution_rewards_discrimination() {
        // Discriminating predictions (right direction) have higher
        // resolution than constant base-rate predictions.
        let labels: Vec<bool> = (0..40).map(|i| i % 2 == 0).collect();
        let informative: Vec<f64> = labels.iter().map(|&y| if y { 0.9 } else { 0.1 }).collect();
        let constant = vec![0.5; 40];
        let di = brier_decomposition(&informative, &labels, 10);
        let dc = brier_decomposition(&constant, &labels, 10);
        assert!(di.resolution > dc.resolution);
    }
}
