//! # calib — confidence calibration (Section IV-C)
//!
//! The joint prediction and calibration module: [`ece`] (expected
//! calibration error), six calibration methods ([`Calibrator`] /
//! [`CalibMethod`]: temperature scaling, beta, logistic, histogram binning,
//! isotonic regression, BBQ) and the adaptive ΔECE-weighted ensemble
//! ([`AdaptiveCalibrator`], Eqs. 24-25) with the mean/std confidence
//! generation step ([`ConfidenceScaler`]).

mod adaptive;
mod ece;
mod extra_metrics;
mod methods;
mod persist;

pub use adaptive::{AdaptiveCalibrator, ConfidenceScaler, MethodSubset, ECE_BINS};
pub use ece::{ece, reliability_diagram, ReliabilityBin};
pub use extra_metrics::{brier, brier_decomposition, mce, BrierDecomposition};
pub use methods::{CalibMethod, Calibrator};
