//! Expected calibration error (Guo et al., 2017) — the metric driving the
//! adaptive weight assignment (Section IV-C3).

/// Expected calibration error with `n_bins` equal-width confidence bins.
///
/// For binary scores interpreted as P(positive), each prediction's
/// confidence is `max(p, 1-p)` and it is correct when the implied hard
/// prediction matches the label. ECE is the accuracy-vs-confidence gap,
/// weighted by bin occupancy.
pub fn ece(scores: &[f64], labels: &[bool], n_bins: usize) -> f64 {
    assert_eq!(scores.len(), labels.len());
    assert!(n_bins > 0);
    if scores.is_empty() {
        return 0.0;
    }
    let mut bin_conf = vec![0.0f64; n_bins];
    let mut bin_acc = vec![0.0f64; n_bins];
    let mut bin_count = vec![0usize; n_bins];
    for (&p, &y) in scores.iter().zip(labels) {
        // A NaN score would land in bin 0 and turn the whole metric into
        // NaN without a trace — fail loudly at the source instead.
        assert!(p.is_finite(), "ece: non-finite score {p}");
        let p = p.clamp(0.0, 1.0);
        let conf = p.max(1.0 - p);
        let pred = p >= 0.5;
        let correct = pred == y;
        // Confidence lives in [0.5, 1.0]; spread bins over that range.
        let b = (((conf - 0.5) * 2.0 * n_bins as f64) as usize).min(n_bins - 1);
        bin_conf[b] += conf;
        bin_acc[b] += if correct { 1.0 } else { 0.0 };
        bin_count[b] += 1;
    }
    let n = scores.len() as f64;
    let mut e = 0.0;
    for b in 0..n_bins {
        if bin_count[b] == 0 {
            continue;
        }
        let c = bin_count[b] as f64;
        e += (c / n) * ((bin_acc[b] / c) - (bin_conf[b] / c)).abs();
    }
    e
}

/// One bar of a reliability diagram.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReliabilityBin {
    pub confidence: f64,
    pub accuracy: f64,
    pub count: usize,
}

/// Reliability diagram data (confidence vs accuracy per bin).
pub fn reliability_diagram(scores: &[f64], labels: &[bool], n_bins: usize) -> Vec<ReliabilityBin> {
    let mut bins = vec![ReliabilityBin { confidence: 0.0, accuracy: 0.0, count: 0 }; n_bins];
    for (&p, &y) in scores.iter().zip(labels) {
        let p = p.clamp(0.0, 1.0);
        let conf = p.max(1.0 - p);
        let correct = (p >= 0.5) == y;
        let b = (((conf - 0.5) * 2.0 * n_bins as f64) as usize).min(n_bins - 1);
        bins[b].confidence += conf;
        bins[b].accuracy += if correct { 1.0 } else { 0.0 };
        bins[b].count += 1;
    }
    for b in &mut bins {
        if b.count > 0 {
            b.confidence /= b.count as f64;
            b.accuracy /= b.count as f64;
        }
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_calibrated_confident_predictions() {
        // p=1.0 always right, p=0.0 always right -> ECE 0.
        let scores = vec![1.0, 1.0, 0.0, 0.0];
        let labels = vec![true, true, false, false];
        assert!(ece(&scores, &labels, 10) < 1e-12);
    }

    #[test]
    fn overconfident_wrong_predictions_have_high_ece() {
        let scores = vec![0.99, 0.99, 0.99, 0.99];
        let labels = vec![false, false, false, false];
        let e = ece(&scores, &labels, 10);
        assert!(e > 0.9, "ece = {e}");
    }

    #[test]
    fn half_right_at_confidence_half_is_calibrated() {
        // Confidence ~0.5 and accuracy 0.5 -> small ECE.
        let scores = vec![0.5, 0.5, 0.5, 0.5];
        let labels = vec![true, false, true, false];
        let e = ece(&scores, &labels, 10);
        assert!(e < 1e-6, "ece = {e}");
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(ece(&[], &[], 10), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite score")]
    fn nan_score_panics() {
        ece(&[0.5, f64::NAN], &[true, false], 10);
    }

    #[test]
    fn reliability_bins_average_correctly() {
        let scores = vec![0.9, 0.9, 0.1];
        let labels = vec![true, false, false];
        let bins = reliability_diagram(&scores, &labels, 5);
        let total: usize = bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 3);
        // All three predictions have confidence 0.9 -> same bin, acc 2/3.
        let bin = bins.iter().find(|b| b.count == 3).unwrap();
        assert!((bin.accuracy - 2.0 / 3.0).abs() < 1e-12);
        assert!((bin.confidence - 0.9).abs() < 1e-12);
    }
}
