//! The six confidence-calibration methods of Section IV-C2.
//!
//! Parametric: temperature scaling, beta calibration, logistic (Platt)
//! calibration. Non-parametric: histogram binning, isotonic regression
//! (PAVA), Bayesian binning into quantiles (BBQ).
//!
//! All methods fit on a held-out calibration set of `(score, label)` pairs
//! where `score ∈ [0, 1]` is the model's positive-class probability, and
//! then map new scores to calibrated probabilities.

const EPS: f64 = 1e-7;

fn clamp01(p: f64) -> f64 {
    p.clamp(EPS, 1.0 - EPS)
}

fn logit(p: f64) -> f64 {
    let p = clamp01(p);
    (p / (1.0 - p)).ln()
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Negative log-likelihood of calibrated probabilities.
fn nll(probs: &[f64], labels: &[bool]) -> f64 {
    probs
        .iter()
        .zip(labels)
        .map(|(&p, &y)| {
            let p = clamp01(p);
            if y {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum::<f64>()
        / probs.len().max(1) as f64
}

/// The identifiers of the six methods, in the paper's presentation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CalibMethod {
    TemperatureScaling,
    BetaCalibration,
    LogisticCalibration,
    HistogramBinning,
    IsotonicRegression,
    Bbq,
}

impl CalibMethod {
    pub const ALL: [CalibMethod; 6] = [
        CalibMethod::TemperatureScaling,
        CalibMethod::BetaCalibration,
        CalibMethod::LogisticCalibration,
        CalibMethod::HistogramBinning,
        CalibMethod::IsotonicRegression,
        CalibMethod::Bbq,
    ];

    pub fn name(self) -> &'static str {
        match self {
            CalibMethod::TemperatureScaling => "temperature",
            CalibMethod::BetaCalibration => "beta",
            CalibMethod::LogisticCalibration => "logistic",
            CalibMethod::HistogramBinning => "histogram",
            CalibMethod::IsotonicRegression => "isotonic",
            CalibMethod::Bbq => "bbq",
        }
    }

    pub fn is_parametric(self) -> bool {
        matches!(
            self,
            CalibMethod::TemperatureScaling
                | CalibMethod::BetaCalibration
                | CalibMethod::LogisticCalibration
        )
    }
}

/// A fitted calibration map.
pub enum Calibrator {
    Temperature { t: f64 },
    Beta { a: f64, b: f64, c: f64 },
    Logistic { a: f64, b: f64 },
    Histogram { edges: Vec<f64>, values: Vec<f64> },
    Isotonic { xs: Vec<f64>, ys: Vec<f64> },
    Bbq { models: Vec<(Vec<f64>, Vec<f64>)>, weights: Vec<f64> },
}

impl Calibrator {
    /// Fit the given method on a calibration split.
    pub fn fit(method: CalibMethod, scores: &[f64], labels: &[bool]) -> Self {
        assert_eq!(scores.len(), labels.len());
        // Isotonic and BBQ sort by score; a NaN comparator would panic deep
        // inside, and any NaN fitted into a bin value silently poisons every
        // downstream ECE. Reject it at the boundary instead.
        assert!(
            scores.iter().all(|s| s.is_finite()),
            "calibration scores must be finite ({})",
            method.name()
        );
        match method {
            CalibMethod::TemperatureScaling => fit_temperature(scores, labels),
            CalibMethod::BetaCalibration => fit_beta(scores, labels),
            CalibMethod::LogisticCalibration => fit_logistic(scores, labels),
            CalibMethod::HistogramBinning => fit_histogram(scores, labels, 10),
            CalibMethod::IsotonicRegression => fit_isotonic(scores, labels),
            CalibMethod::Bbq => fit_bbq(scores, labels),
        }
    }

    /// Calibrate one score.
    pub fn apply(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        match self {
            Calibrator::Temperature { t } => sigmoid(logit(p) / t),
            Calibrator::Beta { a, b, c } => {
                let q = clamp01(p);
                sigmoid(a * q.ln() - b * (1.0 - q).ln() + c)
            }
            Calibrator::Logistic { a, b } => sigmoid(a * logit(p) + b),
            Calibrator::Histogram { edges, values } => {
                let bin = edges.iter().take_while(|&&e| p >= e).count().saturating_sub(1);
                values[bin.min(values.len() - 1)]
            }
            Calibrator::Isotonic { xs, ys } => {
                // Step-function interpolation of the PAVA fit.
                match xs.binary_search_by(|x| x.partial_cmp(&p).unwrap()) {
                    Ok(i) => ys[i],
                    Err(0) => ys.first().copied().unwrap_or(p),
                    Err(i) if i >= xs.len() => ys.last().copied().unwrap_or(p),
                    Err(i) => {
                        // Linear interpolation between the bracketing points.
                        let (x0, x1) = (xs[i - 1], xs[i]);
                        let (y0, y1) = (ys[i - 1], ys[i]);
                        if (x1 - x0).abs() < 1e-15 {
                            y0
                        } else {
                            y0 + (y1 - y0) * (p - x0) / (x1 - x0)
                        }
                    }
                }
            }
            Calibrator::Bbq { models, weights } => {
                let mut out = 0.0;
                for ((edges, values), &w) in models.iter().zip(weights) {
                    let bin = edges.iter().take_while(|&&e| p >= e).count().saturating_sub(1);
                    out += w * values[bin.min(values.len() - 1)];
                }
                out
            }
        }
    }

    /// Calibrate a batch.
    pub fn apply_all(&self, scores: &[f64]) -> Vec<f64> {
        scores.iter().map(|&p| self.apply(p)).collect()
    }
}

/// Golden-section search for the temperature minimising NLL, with a
/// do-no-harm guard: if the NLL-optimal temperature leaves the fit split
/// with a *worse* expected calibration error than the identity map (which
/// sampling noise can produce — NLL and binned ECE are different
/// objectives), fall back to `t = 1`. The guard makes "temperature scaling
/// never increases ECE on its own fit split" an invariant rather than a
/// tendency.
fn fit_temperature(scores: &[f64], labels: &[bool]) -> Calibrator {
    let logits: Vec<f64> = scores.iter().map(|&p| logit(p)).collect();
    let loss = |t: f64| {
        let probs: Vec<f64> = logits.iter().map(|&z| sigmoid(z / t)).collect();
        nll(&probs, labels)
    };
    let (mut lo, mut hi) = (0.05f64, 10.0f64);
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    for _ in 0..60 {
        let m1 = hi - phi * (hi - lo);
        let m2 = lo + phi * (hi - lo);
        if loss(m1) < loss(m2) {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    let fitted = Calibrator::Temperature { t: (lo + hi) / 2.0 };
    let identity = Calibrator::Temperature { t: 1.0 };
    let bins = crate::ECE_BINS;
    if crate::ece(&fitted.apply_all(scores), labels, bins)
        > crate::ece(&identity.apply_all(scores), labels, bins)
    {
        return identity;
    }
    fitted
}

/// Gradient descent on the 2-parameter Platt map `σ(a·logit(p) + b)`.
fn fit_logistic(scores: &[f64], labels: &[bool]) -> Calibrator {
    let z: Vec<f64> = scores.iter().map(|&p| logit(p)).collect();
    let (mut a, mut b) = (1.0f64, 0.0f64);
    let n = z.len().max(1) as f64;
    let lr = 0.1;
    for _ in 0..500 {
        let (mut ga, mut gb) = (0.0, 0.0);
        for (&zi, &yi) in z.iter().zip(labels) {
            let p = sigmoid(a * zi + b);
            let err = p - if yi { 1.0 } else { 0.0 };
            ga += err * zi;
            gb += err;
        }
        a -= lr * ga / n;
        b -= lr * gb / n;
    }
    Calibrator::Logistic { a, b }
}

/// Gradient descent on the 3-parameter beta-calibration map
/// `σ(a·ln p − b·ln(1−p) + c)` with `a, b ≥ 0` (Kull et al.).
fn fit_beta(scores: &[f64], labels: &[bool]) -> Calibrator {
    let u: Vec<f64> = scores.iter().map(|&p| clamp01(p).ln()).collect();
    let v: Vec<f64> = scores.iter().map(|&p| (1.0 - clamp01(p)).ln()).collect();
    let (mut a, mut b, mut c) = (1.0f64, 1.0f64, 0.0f64);
    let n = u.len().max(1) as f64;
    let lr = 0.1;
    for _ in 0..500 {
        let (mut ga, mut gb, mut gc) = (0.0, 0.0, 0.0);
        for ((&ui, &vi), &yi) in u.iter().zip(&v).zip(labels) {
            let p = sigmoid(a * ui - b * vi + c);
            let err = p - if yi { 1.0 } else { 0.0 };
            ga += err * ui;
            gb += err * -vi;
            gc += err;
        }
        a = (a - lr * ga / n).max(0.0);
        b = (b - lr * gb / n).max(0.0);
        c -= lr * gc / n;
    }
    Calibrator::Beta { a, b, c }
}

/// Equal-width histogram binning (Zadrozny & Elkan, 2001) with Laplace
/// smoothing inside each bin.
fn fit_histogram(scores: &[f64], labels: &[bool], n_bins: usize) -> Calibrator {
    let edges: Vec<f64> = (0..=n_bins).map(|i| i as f64 / n_bins as f64).collect();
    let mut pos = vec![0.0f64; n_bins];
    let mut cnt = vec![0.0f64; n_bins];
    for (&p, &y) in scores.iter().zip(labels) {
        let b = ((p * n_bins as f64) as usize).min(n_bins - 1);
        cnt[b] += 1.0;
        if y {
            pos[b] += 1.0;
        }
    }
    let values: Vec<f64> = (0..n_bins).map(|b| (pos[b] + 1.0) / (cnt[b] + 2.0)).collect();
    Calibrator::Histogram { edges, values }
}

/// Isotonic regression by pool-adjacent-violators (Zadrozny & Elkan, 2002).
fn fit_isotonic(scores: &[f64], labels: &[bool]) -> Calibrator {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&i, &j| scores[i].partial_cmp(&scores[j]).unwrap());
    // Blocks of (weighted mean, weight, min x, max x).
    let mut blocks: Vec<(f64, f64, f64)> = Vec::new(); // (mean, weight, x)
    for &i in &order {
        let y = if labels[i] { 1.0 } else { 0.0 };
        blocks.push((y, 1.0, scores[i]));
        while blocks.len() >= 2 {
            let n = blocks.len();
            if blocks[n - 2].0 <= blocks[n - 1].0 {
                break;
            }
            let (m2, w2, _x2) = blocks.pop().unwrap();
            let (m1, w1, x1) = blocks.pop().unwrap();
            let w = w1 + w2;
            blocks.push(((m1 * w1 + m2 * w2) / w, w, x1));
        }
    }
    // Expand blocks back into a monotone step function keyed by score.
    let mut xs = Vec::with_capacity(blocks.len());
    let mut ys = Vec::with_capacity(blocks.len());
    for &(m, _w, x) in &blocks {
        xs.push(x);
        ys.push(m);
    }
    Calibrator::Isotonic { xs, ys }
}

/// Bayesian binning into quantiles (Naeini et al., 2015): average several
/// equal-frequency binning models, weighted by their Beta-Binomial marginal
/// likelihood.
fn fit_bbq(scores: &[f64], labels: &[bool]) -> Calibrator {
    let n = scores.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| scores[i].partial_cmp(&scores[j]).unwrap());

    let bin_counts: Vec<usize> =
        [2usize, 3, 5, 8, 12].into_iter().filter(|&b| b <= n.max(1)).collect();
    let bin_counts = if bin_counts.is_empty() { vec![1] } else { bin_counts };

    let mut models = Vec::new();
    let mut log_evidence = Vec::new();
    for &nb in &bin_counts {
        let mut edges = vec![0.0f64];
        let mut values = Vec::with_capacity(nb);
        let mut log_ev = 0.0f64;
        for b in 0..nb {
            let lo = b * n / nb;
            let hi = ((b + 1) * n / nb).max(lo + 1).min(n);
            let idx = &order[lo..hi.max(lo)];
            let k = idx.iter().filter(|&&i| labels[i]).count() as f64;
            let m = idx.len() as f64;
            values.push((k + 1.0) / (m + 2.0));
            // Beta(1,1)-Binomial evidence: B(k+1, m-k+1) / B(1,1).
            log_ev += ln_beta(k + 1.0, m - k + 1.0);
            if b + 1 < nb {
                let cut = scores[order[hi.min(n - 1)]];
                edges.push(cut);
            }
        }
        edges.push(1.0 + 1e-12);
        models.push((edges, values));
        log_evidence.push(log_ev);
    }
    // Softmax the evidences into weights.
    let max_ev = log_evidence.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut weights: Vec<f64> = log_evidence.iter().map(|&e| (e - max_ev).exp()).collect();
    let s: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= s;
    }
    Calibrator::Bbq { models, weights }
}

/// `ln B(a, b)` via Stirling-series `ln Γ`.
fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0`.
fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return (std::f64::consts::PI / (std::f64::consts::PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ece::ece;

    /// Systematically overconfident scores: true probability is milder than
    /// the reported one.
    fn overconfident_data() -> (Vec<f64>, Vec<bool>) {
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        // Reported 0.9 but only 60% positive; reported 0.1 but 40% positive.
        for i in 0..200 {
            scores.push(0.9);
            labels.push(i % 10 < 6);
            scores.push(0.1);
            labels.push(i % 10 < 4);
        }
        (scores, labels)
    }

    #[test]
    fn every_method_reduces_ece_on_overconfident_data() {
        let (scores, labels) = overconfident_data();
        let before = ece(&scores, &labels, 10);
        for method in CalibMethod::ALL {
            let cal = Calibrator::fit(method, &scores, &labels);
            let after = ece(&cal.apply_all(&scores), &labels, 10);
            assert!(
                after < before,
                "{} failed to reduce ECE: {before:.4} -> {after:.4}",
                method.name()
            );
        }
    }

    #[test]
    fn outputs_stay_in_unit_interval() {
        let (scores, labels) = overconfident_data();
        for method in CalibMethod::ALL {
            let cal = Calibrator::fit(method, &scores, &labels);
            for p in [0.0, 0.001, 0.25, 0.5, 0.75, 0.999, 1.0] {
                let q = cal.apply(p);
                assert!((0.0..=1.0).contains(&q), "{}({p}) = {q}", method.name());
            }
        }
    }

    #[test]
    fn temperature_above_one_for_overconfident_model() {
        let (scores, labels) = overconfident_data();
        let cal = Calibrator::fit(CalibMethod::TemperatureScaling, &scores, &labels);
        match cal {
            Calibrator::Temperature { t } => assert!(t > 1.0, "t = {t}"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn isotonic_output_is_monotone() {
        let (scores, labels) = overconfident_data();
        let cal = Calibrator::fit(CalibMethod::IsotonicRegression, &scores, &labels);
        let mut prev = -1.0;
        for i in 0..=100 {
            let p = i as f64 / 100.0;
            let q = cal.apply(p);
            assert!(q >= prev - 1e-12, "isotonic not monotone at {p}: {q} < {prev}");
            prev = q;
        }
    }

    #[test]
    fn histogram_learns_bin_frequencies() {
        let scores = vec![0.95; 100];
        let labels: Vec<bool> = (0..100).map(|i| i < 70).collect();
        let cal = Calibrator::fit(CalibMethod::HistogramBinning, &scores, &labels);
        let q = cal.apply(0.95);
        assert!((q - 0.7).abs() < 0.02, "q = {q}");
    }

    #[test]
    fn bbq_weights_sum_to_one() {
        let (scores, labels) = overconfident_data();
        let cal = Calibrator::fit(CalibMethod::Bbq, &scores, &labels);
        match cal {
            Calibrator::Bbq { weights, .. } => {
                assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parametric_split_matches_paper() {
        assert!(CalibMethod::TemperatureScaling.is_parametric());
        assert!(CalibMethod::BetaCalibration.is_parametric());
        assert!(CalibMethod::LogisticCalibration.is_parametric());
        assert!(!CalibMethod::HistogramBinning.is_parametric());
        assert!(!CalibMethod::IsotonicRegression.is_parametric());
        assert!(!CalibMethod::Bbq.is_parametric());
    }

    #[test]
    fn every_method_survives_single_class_holdout() {
        // A holdout stratum can be all-positive (or all-negative) on tiny
        // datasets; every method must still produce finite probabilities.
        let scores: Vec<f64> = (0..20).map(|i| 0.3 + 0.02 * i as f64).collect();
        for labels in [vec![true; 20], vec![false; 20]] {
            for method in CalibMethod::ALL {
                let cal = Calibrator::fit(method, &scores, &labels);
                for p in [0.0, 0.25, 0.5, 0.75, 1.0] {
                    let q = cal.apply(p);
                    assert!(
                        q.is_finite() && (0.0..=1.0).contains(&q),
                        "{}({p}) = {q} on single-class holdout",
                        method.name()
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_scores_are_rejected_at_fit() {
        Calibrator::fit(CalibMethod::IsotonicRegression, &[0.2, f64::NAN], &[true, false]);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(5) = 24.
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-9);
        // Γ(0.5) = sqrt(pi).
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }
}
