//! Adaptive weight calibration (Section IV-C3, Eqs. 24-25).
//!
//! All six calibrators are fitted on a calibration split; each method's
//! weight is its normalised ECE reduction `ΔECE_i / Σ ΔECE_j`. Methods that
//! *increase* ECE receive negative weights — the paper observes exactly this
//! for parametric methods on small datasets (Fig. 6).

use crate::ece::ece;
use crate::methods::{CalibMethod, Calibrator};

/// Number of ECE bins used throughout.
pub const ECE_BINS: usize = 10;

/// A fitted adaptive calibration ensemble.
pub struct AdaptiveCalibrator {
    pub(crate) methods: Vec<(CalibMethod, Calibrator)>,
    pub(crate) weights: Vec<f64>,
    /// ECE of the raw scores on the calibration split.
    pub base_ece: f64,
    /// Per-method ECE after calibration, aligned with `methods`.
    pub method_ece: Vec<f64>,
}

/// Which subset of methods to use — supports the w/o Param. / w/o
/// Non-param. ablation rows of Table IV.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MethodSubset {
    All,
    ParametricOnly,
    NonParametricOnly,
}

impl MethodSubset {
    fn contains(self, m: CalibMethod) -> bool {
        match self {
            MethodSubset::All => true,
            MethodSubset::ParametricOnly => m.is_parametric(),
            MethodSubset::NonParametricOnly => !m.is_parametric(),
        }
    }
}

impl AdaptiveCalibrator {
    /// Fit the selected calibrators on `(scores, labels)` and derive the
    /// ΔECE weights. If `adaptive` is false, methods are weighted uniformly
    /// (the "w/o Ada." ablations).
    pub fn fit(scores: &[f64], labels: &[bool], subset: MethodSubset, adaptive: bool) -> Self {
        let _span = obs::span("calib.adaptive.fit");
        obs::counter_add("calib.fits", 1);
        let base_ece = ece(scores, labels, ECE_BINS);
        let mut methods = Vec::new();
        let mut deltas = Vec::new();
        let mut method_ece = Vec::new();
        for m in CalibMethod::ALL {
            if !subset.contains(m) {
                continue;
            }
            let cal = Calibrator::fit(m, scores, labels);
            let e = ece(&cal.apply_all(scores), labels, ECE_BINS);
            obs::debug!(
                "calib",
                "{}: ECE {base_ece:.4} -> {e:.4} (ΔECE {:+.4})",
                m.name(),
                base_ece - e
            );
            deltas.push(base_ece - e);
            method_ece.push(e);
            methods.push((m, cal));
        }
        let weights = if adaptive {
            let total: f64 = deltas.iter().sum();
            if total.abs() < 1e-12 {
                vec![1.0 / methods.len().max(1) as f64; methods.len()]
            } else {
                deltas.iter().map(|&d| d / total).collect()
            }
        } else {
            vec![1.0 / methods.len().max(1) as f64; methods.len()]
        };
        Self { methods, weights, base_ece, method_ece }
    }

    /// The fitted methods and their adaptive weights (Fig. 6's bars).
    pub fn method_weights(&self) -> Vec<(CalibMethod, f64)> {
        self.methods.iter().zip(&self.weights).map(|((m, _), &w)| (*m, w)).collect()
    }

    /// Each fitted method's individual post-calibration ECE on the
    /// calibration split, aligned with [`Self::method_weights`];
    /// `base_ece - ece` is the method's ΔECE from Eq. 25.
    pub fn method_eces(&self) -> Vec<(CalibMethod, f64)> {
        self.methods.iter().zip(&self.method_ece).map(|((m, _), &e)| (*m, e)).collect()
    }

    /// Eq. 24: the weighted calibrated probability of one raw score,
    /// clamped to `[0, 1]` (negative weights can push the sum outside).
    pub fn calibrate(&self, p: f64) -> f64 {
        let mut out = 0.0;
        for ((_, cal), &w) in self.methods.iter().zip(&self.weights) {
            out += w * cal.apply(p);
        }
        out.clamp(0.0, 1.0)
    }

    pub fn calibrate_all(&self, scores: &[f64]) -> Vec<f64> {
        // `panic@calib.apply` injection point: the whole ensemble blows up
        // mid-batch, exercising the branch-level uncalibrated fallback.
        faults::maybe_panic("calib.apply", None);
        scores.iter().map(|&p| self.calibrate(p)).collect()
    }
}

/// Turn raw (unbounded) prediction values into confidences in `(0, 1)` by
/// z-scoring against the calibration split and squashing (Section IV-C1's
/// "confidence generation").
#[derive(Clone, Copy, Debug)]
pub struct ConfidenceScaler {
    pub mean: f64,
    pub std: f64,
}

impl ConfidenceScaler {
    pub fn fit(raw: &[f64]) -> Self {
        let n = raw.len().max(1) as f64;
        let mean = raw.iter().sum::<f64>() / n;
        let var = raw.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        // Constant raw scores (e.g. a collapsed encoder on a single-class
        // holdout) have zero variance; dividing by a ~0 std would saturate
        // every future score to exactly 0 or 1. Fall back to the identity
        // scale so the constant point maps to 0.5 and nearby scores stay
        // informative.
        let std = if var > 1e-18 { var.sqrt() } else { 1.0 };
        Self { mean, std }
    }

    pub fn scale(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std;
        1.0 / (1.0 + (-z).exp())
    }

    pub fn scale_all(&self, raw: &[f64]) -> Vec<f64> {
        if faults::active() {
            // `nan@calib.scale:<pos>` injection point: one scaled
            // confidence turns NaN after batch statistics were already
            // fitted — the hardest position in the ladder to contain.
            return raw
                .iter()
                .enumerate()
                .map(|(i, &x)| faults::poison_f64("calib.scale", Some(i), self.scale(x)))
                .collect();
        }
        raw.iter().map(|&x| self.scale(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overconfident() -> (Vec<f64>, Vec<bool>) {
        let mut s = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            s.push(0.92);
            y.push(i % 10 < 6);
            s.push(0.08);
            y.push(i % 10 < 4);
        }
        (s, y)
    }

    #[test]
    fn adaptive_weights_sum_to_one() {
        let (s, y) = overconfident();
        let cal = AdaptiveCalibrator::fit(&s, &y, MethodSubset::All, true);
        let sum: f64 = cal.method_weights().iter().map(|(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(cal.method_weights().len(), 6);
    }

    #[test]
    fn adaptive_ensemble_reduces_ece() {
        let (s, y) = overconfident();
        let cal = AdaptiveCalibrator::fit(&s, &y, MethodSubset::All, true);
        let after = ece(&cal.calibrate_all(&s), &y, ECE_BINS);
        assert!(after < cal.base_ece, "{} -> {after}", cal.base_ece);
    }

    #[test]
    fn better_methods_get_larger_weights() {
        let (s, y) = overconfident();
        let cal = AdaptiveCalibrator::fit(&s, &y, MethodSubset::All, true);
        // Weight order must match ΔECE order.
        let weights = cal.method_weights();
        for (i, &e_i) in cal.method_ece.iter().enumerate() {
            for (j, &e_j) in cal.method_ece.iter().enumerate() {
                if e_i < e_j {
                    assert!(
                        weights[i].1 >= weights[j].1 - 1e-12,
                        "method with lower ECE got smaller weight"
                    );
                }
            }
        }
    }

    #[test]
    fn subsets_restrict_methods() {
        let (s, y) = overconfident();
        let p = AdaptiveCalibrator::fit(&s, &y, MethodSubset::ParametricOnly, true);
        assert!(p.method_weights().iter().all(|(m, _)| m.is_parametric()));
        assert_eq!(p.method_weights().len(), 3);
        let np = AdaptiveCalibrator::fit(&s, &y, MethodSubset::NonParametricOnly, true);
        assert!(np.method_weights().iter().all(|(m, _)| !m.is_parametric()));
    }

    #[test]
    fn non_adaptive_weights_are_uniform() {
        let (s, y) = overconfident();
        let cal = AdaptiveCalibrator::fit(&s, &y, MethodSubset::All, false);
        for (_, w) in cal.method_weights() {
            assert!((w - 1.0 / 6.0).abs() < 1e-12);
        }
    }

    #[test]
    fn calibrated_outputs_in_unit_interval() {
        let (s, y) = overconfident();
        let cal = AdaptiveCalibrator::fit(&s, &y, MethodSubset::All, true);
        for p in [0.0, 0.3, 0.5, 0.77, 1.0] {
            let q = cal.calibrate(p);
            assert!((0.0..=1.0).contains(&q));
        }
    }

    #[test]
    fn confidence_scaler_squashes_to_unit_interval() {
        let raw = vec![-3.0, -1.0, 0.0, 2.0, 10.0];
        let sc = ConfidenceScaler::fit(&raw);
        let scaled = sc.scale_all(&raw);
        assert!(scaled.iter().all(|&p| (0.0..=1.0).contains(&p)));
        // Monotone.
        for w in scaled.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // Mean raw value maps to 0.5.
        assert!((sc.scale(sc.mean) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn confidence_scaler_degenerate_constant_input() {
        let sc = ConfidenceScaler::fit(&[2.0, 2.0, 2.0]);
        assert!((sc.scale(2.0) - 0.5).abs() < 1e-9);
        // The zero-variance fallback must not saturate nearby scores: with
        // the identity scale, mean ± 1 maps to σ(±1), not to 0 or 1.
        let hi = sc.scale(3.0);
        let lo = sc.scale(1.0);
        assert!(hi.is_finite() && lo.is_finite());
        assert!((hi - 0.731).abs() < 1e-3, "hi = {hi}");
        assert!((lo - 0.269).abs() < 1e-3, "lo = {lo}");
    }

    #[test]
    fn adaptive_calibrator_survives_single_class_holdout() {
        let scores: Vec<f64> = (0..30).map(|i| 0.2 + 0.02 * i as f64).collect();
        let labels = vec![true; 30];
        let cal = AdaptiveCalibrator::fit(&scores, &labels, MethodSubset::All, true);
        for p in [0.0, 0.5, 1.0] {
            let q = cal.calibrate(p);
            assert!(q.is_finite() && (0.0..=1.0).contains(&q), "calibrate({p}) = {q}");
        }
        let sum: f64 = cal.method_weights().iter().map(|(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
