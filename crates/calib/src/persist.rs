//! `model-io` (de)serialisation for fitted calibrators.
//!
//! Everything travels as IEEE-754 bit patterns, so a saved
//! [`AdaptiveCalibrator`] reproduces its in-memory twin's outputs exactly —
//! the byte-identity contract of `dbg4eth::Session::score` flows through here.
//! Malformed payloads surface as typed [`ModelIoError`]s, never panics.

use crate::adaptive::AdaptiveCalibrator;
use crate::methods::{CalibMethod, Calibrator};
use model_io::{ModelIoError, SectionReader, SectionWriter};

impl CalibMethod {
    /// Stable on-disk tag (presentation order of Section IV-C2).
    pub fn tag(self) -> u8 {
        match self {
            CalibMethod::TemperatureScaling => 0,
            CalibMethod::BetaCalibration => 1,
            CalibMethod::LogisticCalibration => 2,
            CalibMethod::HistogramBinning => 3,
            CalibMethod::IsotonicRegression => 4,
            CalibMethod::Bbq => 5,
        }
    }

    pub fn from_tag(tag: u8) -> Result<Self, ModelIoError> {
        Ok(match tag {
            0 => CalibMethod::TemperatureScaling,
            1 => CalibMethod::BetaCalibration,
            2 => CalibMethod::LogisticCalibration,
            3 => CalibMethod::HistogramBinning,
            4 => CalibMethod::IsotonicRegression,
            5 => CalibMethod::Bbq,
            v => {
                return Err(ModelIoError::Corrupt {
                    context: format!("unknown calibration method tag {v}"),
                })
            }
        })
    }
}

impl Calibrator {
    /// Append this fitted map to a section (variant tag, then parameters).
    pub fn write(&self, s: &mut SectionWriter) {
        match self {
            Calibrator::Temperature { t } => {
                s.put_u8(0);
                s.put_f64(*t);
            }
            Calibrator::Beta { a, b, c } => {
                s.put_u8(1);
                s.put_f64(*a);
                s.put_f64(*b);
                s.put_f64(*c);
            }
            Calibrator::Logistic { a, b } => {
                s.put_u8(2);
                s.put_f64(*a);
                s.put_f64(*b);
            }
            Calibrator::Histogram { edges, values } => {
                s.put_u8(3);
                s.put_f64s(edges);
                s.put_f64s(values);
            }
            Calibrator::Isotonic { xs, ys } => {
                s.put_u8(4);
                s.put_f64s(xs);
                s.put_f64s(ys);
            }
            Calibrator::Bbq { models, weights } => {
                s.put_u8(5);
                s.put_usize(models.len());
                for (edges, values) in models {
                    s.put_f64s(edges);
                    s.put_f64s(values);
                }
                s.put_f64s(weights);
            }
        }
    }

    /// Read a map written by [`Calibrator::write`].
    pub fn read(s: &mut SectionReader) -> Result<Self, ModelIoError> {
        Ok(match s.get_u8()? {
            0 => {
                let t = s.get_f64()?;
                // `apply` divides the logit by `t`: a non-finite or
                // non-positive temperature poisons (or inverts) every score.
                if !t.is_finite() || t <= 0.0 {
                    return Err(ModelIoError::Corrupt {
                        context: format!("temperature scaling with invalid t = {t}"),
                    });
                }
                Calibrator::Temperature { t }
            }
            1 => {
                let cal = Calibrator::Beta { a: s.get_f64()?, b: s.get_f64()?, c: s.get_f64()? };
                if let Calibrator::Beta { a, b, c } = cal {
                    check_finite(&[a, b, c], "beta calibration parameters")?;
                }
                cal
            }
            2 => {
                let (a, b) = (s.get_f64()?, s.get_f64()?);
                check_finite(&[a, b], "logistic calibration parameters")?;
                Calibrator::Logistic { a, b }
            }
            3 => {
                let cal = Calibrator::Histogram { edges: s.get_f64s()?, values: s.get_f64s()? };
                check_binning(&cal)?;
                cal
            }
            4 => {
                let (xs, ys) = (s.get_f64s()?, s.get_f64s()?);
                if xs.len() != ys.len() || xs.is_empty() {
                    return Err(ModelIoError::Corrupt {
                        context: format!(
                            "isotonic map has {} knots but {} values",
                            xs.len(),
                            ys.len()
                        ),
                    });
                }
                // A NaN knot would panic inside `apply`'s binary search
                // (`partial_cmp(..).unwrap()`), so finiteness is a load-time
                // invariant, not just a quality concern.
                check_finite(&xs, "isotonic knots")?;
                check_finite(&ys, "isotonic values")?;
                Calibrator::Isotonic { xs, ys }
            }
            5 => {
                let n = s.get_usize()?;
                if n > s.remaining() {
                    return Err(ModelIoError::Truncated { context: "BBQ model count" });
                }
                let mut models = Vec::with_capacity(n);
                for _ in 0..n {
                    models.push((s.get_f64s()?, s.get_f64s()?));
                }
                let weights = s.get_f64s()?;
                if weights.len() != models.len() {
                    return Err(ModelIoError::Corrupt {
                        context: format!(
                            "BBQ has {} models but {} weights",
                            models.len(),
                            weights.len()
                        ),
                    });
                }
                check_finite(&weights, "BBQ weights")?;
                let cal = Calibrator::Bbq { models, weights };
                check_binning(&cal)?;
                cal
            }
            v => {
                return Err(ModelIoError::Corrupt {
                    context: format!("unknown calibrator variant tag {v}"),
                })
            }
        })
    }
}

/// Reject non-finite floats on a load path: a NaN smuggled in through a
/// damaged payload would silently poison every downstream score (or panic
/// in an `apply`-time comparison) instead of surfacing as a typed error.
fn check_finite(values: &[f64], what: &str) -> Result<(), ModelIoError> {
    match values.iter().find(|v| !v.is_finite()) {
        Some(v) => {
            Err(ModelIoError::Corrupt { context: format!("{what} contain non-finite value {v}") })
        }
        None => Ok(()),
    }
}

/// Binning calibrators index `values[bin]` from `edges`; an empty `values`
/// or mismatched edge count would panic in `apply`, so reject it at load.
fn check_binning(cal: &Calibrator) -> Result<(), ModelIoError> {
    let check = |edges: &[f64], values: &[f64], what: &str| {
        if values.is_empty() || edges.len() != values.len() + 1 {
            return Err(ModelIoError::Corrupt {
                context: format!("{what} has {} edges for {} bins", edges.len(), values.len()),
            });
        }
        check_finite(edges, what)?;
        check_finite(values, what)?;
        Ok(())
    };
    match cal {
        Calibrator::Histogram { edges, values } => check(edges, values, "histogram"),
        Calibrator::Bbq { models, .. } => {
            models.iter().try_for_each(|(edges, values)| check(edges, values, "BBQ model"))
        }
        _ => Ok(()),
    }
}

impl AdaptiveCalibrator {
    /// Append the full fitted ensemble: every method with its ΔECE weight
    /// and calibration-split ECE, plus the split's base ECE.
    pub fn write(&self, s: &mut SectionWriter) {
        s.put_f64(self.base_ece);
        s.put_u32(self.methods.len() as u32);
        for (((m, cal), &w), &e) in self.methods.iter().zip(&self.weights).zip(&self.method_ece) {
            s.put_u8(m.tag());
            s.put_f64(w);
            s.put_f64(e);
            cal.write(s);
        }
    }

    /// Read an ensemble written by [`AdaptiveCalibrator::write`].
    pub fn read(s: &mut SectionReader) -> Result<Self, ModelIoError> {
        let base_ece = s.get_f64()?;
        check_finite(&[base_ece], "ensemble base ECE")?;
        let n = s.get_u32()? as usize;
        let mut methods = Vec::with_capacity(n.min(CalibMethod::ALL.len()));
        let mut weights = Vec::new();
        let mut method_ece = Vec::new();
        for _ in 0..n {
            let m = CalibMethod::from_tag(s.get_u8()?)?;
            weights.push(s.get_f64()?);
            method_ece.push(s.get_f64()?);
            methods.push((m, Calibrator::read(s)?));
        }
        // Weights multiply every calibrated score (Eq. 24); one NaN weight
        // poisons the whole ensemble output.
        check_finite(&weights, "ensemble method weights")?;
        check_finite(&method_ece, "ensemble method ECEs")?;
        Ok(Self { methods, weights, base_ece, method_ece })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MethodSubset;
    use model_io::{ModelReader, ModelWriter};

    fn fixture() -> (Vec<f64>, Vec<bool>) {
        let mut s = Vec::new();
        let mut y = Vec::new();
        for i in 0..240 {
            s.push(0.88);
            y.push(i % 10 < 6);
            s.push(0.12);
            y.push(i % 10 < 4);
        }
        (s, y)
    }

    fn round_trip(cal: &AdaptiveCalibrator) -> AdaptiveCalibrator {
        let mut w = ModelWriter::new();
        let mut sec = SectionWriter::new();
        cal.write(&mut sec);
        w.push("calib", sec);
        let r = ModelReader::from_bytes(&w.to_bytes()).unwrap();
        let mut sec = r.section("calib").unwrap();
        let loaded = AdaptiveCalibrator::read(&mut sec).unwrap();
        sec.expect_end("calib").unwrap();
        loaded
    }

    #[test]
    fn adaptive_ensemble_round_trips_bit_exactly() {
        let (s, y) = fixture();
        for subset in
            [MethodSubset::All, MethodSubset::ParametricOnly, MethodSubset::NonParametricOnly]
        {
            let cal = AdaptiveCalibrator::fit(&s, &y, subset, true);
            let loaded = round_trip(&cal);
            assert_eq!(loaded.base_ece.to_bits(), cal.base_ece.to_bits());
            assert_eq!(loaded.method_weights(), cal.method_weights());
            assert_eq!(loaded.method_eces(), cal.method_eces());
            for p in [0.0, 0.07, 0.12, 0.5, 0.88, 0.93, 1.0] {
                assert_eq!(loaded.calibrate(p).to_bits(), cal.calibrate(p).to_bits());
            }
        }
    }

    #[test]
    fn method_tags_round_trip() {
        for m in CalibMethod::ALL {
            assert_eq!(CalibMethod::from_tag(m.tag()).unwrap(), m);
        }
        assert!(CalibMethod::from_tag(6).is_err());
    }

    #[test]
    fn bad_variant_tag_is_typed_error() {
        let mut sec = SectionWriter::new();
        sec.put_u8(99);
        let mut w = ModelWriter::new();
        w.push("c", sec);
        let r = ModelReader::from_bytes(&w.to_bytes()).unwrap();
        match Calibrator::read(&mut r.section("c").unwrap()) {
            Err(ModelIoError::Corrupt { context }) => assert!(context.contains("99")),
            other => panic!("expected Corrupt, got {:?}", other.map(|_| ())),
        }
    }

    fn read_back(sec: SectionWriter) -> Result<Calibrator, ModelIoError> {
        let mut w = ModelWriter::new();
        w.push("c", sec);
        let r = ModelReader::from_bytes(&w.to_bytes()).unwrap();
        Calibrator::read(&mut r.section("c").unwrap())
    }

    #[test]
    fn non_finite_parameters_are_typed_errors() {
        // Temperature: NaN, infinite, zero and negative all divide (or
        // invert) the logit into garbage.
        for t in [f64::NAN, f64::INFINITY, 0.0, -2.0] {
            let mut sec = SectionWriter::new();
            sec.put_u8(0);
            sec.put_f64(t);
            assert!(
                matches!(read_back(sec), Err(ModelIoError::Corrupt { .. })),
                "temperature t = {t} must be rejected"
            );
        }
        // Beta with a NaN coefficient.
        let mut sec = SectionWriter::new();
        sec.put_u8(1);
        sec.put_f64(1.0);
        sec.put_f64(f64::NAN);
        sec.put_f64(0.0);
        assert!(matches!(read_back(sec), Err(ModelIoError::Corrupt { .. })));
        // Logistic with an infinite slope.
        let mut sec = SectionWriter::new();
        sec.put_u8(2);
        sec.put_f64(f64::NEG_INFINITY);
        sec.put_f64(0.0);
        assert!(matches!(read_back(sec), Err(ModelIoError::Corrupt { .. })));
    }

    #[test]
    fn nan_isotonic_knot_is_rejected_not_deferred_to_apply() {
        // A NaN knot would reach `partial_cmp(..).unwrap()` inside the
        // apply-time binary search — the load path must refuse it.
        let mut sec = SectionWriter::new();
        sec.put_u8(4);
        sec.put_f64s(&[0.1, f64::NAN, 0.9]);
        sec.put_f64s(&[0.2, 0.5, 0.8]);
        match read_back(sec) {
            Err(ModelIoError::Corrupt { context }) => assert!(context.contains("isotonic")),
            other => panic!("expected Corrupt, got {:?}", other.map(|_| ())),
        }
        // Empty maps have no knot to look up at all.
        let mut sec = SectionWriter::new();
        sec.put_u8(4);
        sec.put_f64s(&[]);
        sec.put_f64s(&[]);
        assert!(matches!(read_back(sec), Err(ModelIoError::Corrupt { .. })));
    }

    #[test]
    fn non_finite_ensemble_weights_are_rejected() {
        let (s, y) = fixture();
        let cal = AdaptiveCalibrator::fit(&s, &y, MethodSubset::ParametricOnly, true);
        let mut sec = SectionWriter::new();
        sec.put_f64(cal.base_ece);
        sec.put_u32(cal.methods.len() as u32);
        for (i, (((m, c), &w), &e)) in
            cal.methods.iter().zip(&cal.weights).zip(&cal.method_ece).enumerate()
        {
            sec.put_u8(m.tag());
            sec.put_f64(if i == 1 { f64::NAN } else { w });
            sec.put_f64(e);
            c.write(&mut sec);
        }
        let mut w = ModelWriter::new();
        w.push("c", sec);
        let r = ModelReader::from_bytes(&w.to_bytes()).unwrap();
        match AdaptiveCalibrator::read(&mut r.section("c").unwrap()) {
            Err(ModelIoError::Corrupt { context }) => assert!(context.contains("weights")),
            other => panic!("expected Corrupt, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn histogram_bin_mismatch_is_typed_error() {
        let mut sec = SectionWriter::new();
        sec.put_u8(3);
        sec.put_f64s(&[0.0, 0.5, 1.0]); // 3 edges...
        sec.put_f64s(&[0.3, 0.6, 0.9]); // ...but 3 values (needs 2)
        let mut w = ModelWriter::new();
        w.push("c", sec);
        let r = ModelReader::from_bytes(&w.to_bytes()).unwrap();
        assert!(matches!(
            Calibrator::read(&mut r.section("c").unwrap()),
            Err(ModelIoError::Corrupt { .. })
        ));
    }
}
