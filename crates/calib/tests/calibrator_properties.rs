//! Property tests for the calibration stack (satellite of the train/serve
//! split): structural guarantees every serving path leans on, checked over
//! arbitrary fit sets rather than hand-picked examples.

use calib::{ece, CalibMethod, Calibrator};
use proptest::prelude::*;

/// `(score, label)` fit sets. Labels are drawn through a monotone
/// miscalibration of the score (a ground-truth temperature `t_true` plus a
/// uniform draw), the regime calibration methods are designed for.
fn fit_sets() -> impl Strategy<Value = (Vec<f64>, Vec<bool>)> {
    (prop::collection::vec((0.02f64..0.98, 0.0f64..1.0), 20..120), 0.25f64..4.0).prop_map(
        |(raw, t_true)| {
            let scores: Vec<f64> = raw.iter().map(|(s, _)| *s).collect();
            let labels: Vec<bool> = raw
                .iter()
                .map(|&(s, u)| {
                    let z = (s / (1.0 - s)).ln();
                    u < 1.0 / (1.0 + (-z * t_true).exp())
                })
                .collect();
            (scores, labels)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Isotonic regression is monotone: a higher raw score never maps to a
    /// lower calibrated probability.
    #[test]
    fn isotonic_is_monotone(
        (scores, labels) in fit_sets(),
        queries in prop::collection::vec(0.0f64..1.0, 2..40),
    ) {
        let cal = Calibrator::fit(CalibMethod::IsotonicRegression, &scores, &labels);
        let mut sorted = queries;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let out: Vec<f64> = sorted.iter().map(|&q| cal.apply(q)).collect();
        for w in out.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12, "isotonic not monotone: {} -> {}", w[0], w[1]);
        }
    }

    /// Histogram binning and BBQ always emit probabilities, for any query —
    /// including the exact bin edges 0 and 1.
    #[test]
    fn binned_methods_stay_in_unit_interval(
        (scores, labels) in fit_sets(),
        queries in prop::collection::vec(0.0f64..1.0, 1..40),
    ) {
        for method in [CalibMethod::HistogramBinning, CalibMethod::Bbq] {
            let cal = Calibrator::fit(method, &scores, &labels);
            for q in queries.iter().copied().chain([0.0, 0.5, 1.0]) {
                let p = cal.apply(q);
                prop_assert!(
                    (0.0..=1.0).contains(&p),
                    "{}({q}) = {p} outside [0, 1]", method.name()
                );
            }
        }
    }

    /// Temperature scaling never increases the expected calibration error
    /// on the very split it was fitted on.
    #[test]
    fn temperature_never_hurts_ece_on_fit_split((scores, labels) in fit_sets()) {
        let cal = Calibrator::fit(CalibMethod::TemperatureScaling, &scores, &labels);
        let before = ece(&scores, &labels, 10);
        let after = ece(&cal.apply_all(&scores), &labels, 10);
        prop_assert!(
            after <= before + 1e-9,
            "temperature raised ECE on its own fit split: {before} -> {after}"
        );
    }
}
