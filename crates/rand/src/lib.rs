//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships its own implementation of the small slice of `rand`
//! it actually uses: [`rngs::StdRng`] (here xoshiro256++ seeded through
//! SplitMix64), the [`SeedableRng`]/[`RngCore`]/[`Rng`] traits, and
//! [`seq::SliceRandom`] (Fisher–Yates shuffle + `choose`).
//!
//! Streams differ from upstream `rand` (which uses ChaCha12 for `StdRng`),
//! but every consumer in this workspace only relies on *seed determinism*
//! and statistical quality, both of which xoshiro256++ provides.

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (mirrors upstream).
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types a range can be sampled from via [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Debiased multiply-shift (Lemire); span == 0 only for the
                // full u64 domain, which no caller uses.
                let mut x = rng.next_u64();
                let mut m = (x as u128).wrapping_mul(span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128).wrapping_mul(span as u128);
                        lo = m as u64;
                    }
                }
                self.start.wrapping_add((m >> 64) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end.wrapping_add(1)).sample_from(rng)
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8, isize);

macro_rules! float_range {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = $unit(rng);
                let v = self.start + (self.end - self.start) * u;
                // Rounding can land exactly on `end` for huge spans; fold
                // that measure-zero case back onto the closed start.
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

float_range!(f64 => unit_f64, f32 => unit_f32);

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }
}

pub mod seq {
    use super::{RngCore, SampleRange};

    #[inline]
    fn uniform_index<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
        (0..n).sample_from(rng)
    }

    /// Slice shuffling and selection (the `rand` 0.8 `SliceRandom` subset).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, identical order for identical seeds.
            for i in (1..self.len()).rev() {
                let j = uniform_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_index(rng, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&y));
            let z = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(z > 0.0 && z < 1.0);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn choose_stays_in_slice() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [1, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
