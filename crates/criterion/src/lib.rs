//! Offline micro-benchmark harness exposing the subset of the `criterion`
//! API the workspace benches use: [`Criterion::bench_function`],
//! [`Bencher::iter`], `sample_size`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Timing is a simple best-of-samples wall-clock measurement printed to
//! stdout — enough to compare kernels on one machine, with none of
//! criterion's statistics.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Best-of-samples results of every `bench_function` run so far, in run
/// order. Benches that want to persist a machine-readable report (e.g.
/// through `bench::emit_report`) drain this after running their groups.
static RESULTS: Mutex<Vec<(String, Duration)>> = Mutex::new(Vec::new());

/// Drain the accumulated `(name, best)` results recorded by
/// [`Criterion::bench_function`] since the last call.
pub fn take_results() -> Vec<(String, Duration)> {
    std::mem::take(&mut RESULTS.lock().expect("results lock"))
}

/// Runs one benchmark body repeatedly.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warmup_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10, warmup_iters: 1 }
    }
}

impl Criterion {
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Warm-up pass (also sizes one sample).
        let mut b = Bencher { iters: self.warmup_iters, elapsed: Duration::ZERO };
        f(&mut b);
        let mut best =
            b.elapsed.max(Duration::from_nanos(1)) / u32::try_from(b.iters.max(1)).unwrap_or(1);
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            if b.elapsed > Duration::ZERO && b.elapsed < best {
                best = b.elapsed;
            }
        }
        println!("{name}: best {best:?} over {} samples", self.sample_size);
        RESULTS.lock().expect("results lock").push((name.to_string(), best));
        self
    }
}

/// Declare a benchmark group, optionally with a configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().sample_size(3);
        sample_bench(&mut c);
    }
}
