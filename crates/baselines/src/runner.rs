//! One entry point that runs any Table III baseline on a dataset.

use crate::embedbl::{run_embedding_baseline, EmbedConfig, EmbedKind};
use crate::gnnmodels::{
    AppnpBaseline, GatBaseline, GcnBaseline, GinBaseline, I2BgnnBaseline, SageBaseline,
};
use crate::harness::{
    predict_model, score_metrics, train_model, GraphModel, LoweredDataset, TrainConfig,
};
use crate::special::{EthidentBaseline, TegDetectorBaseline, TsgnBaseline};
use crate::transformer::{Bert4EthBaseline, GritBaseline};
use eth_sim::GraphDataset;
use nn::metrics::Metrics;
use nn::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every baseline of Table III (`features: false` variants are the
/// "w/o node feature" rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Baseline {
    DeepWalk,
    Node2Vec,
    GcnNoFeatures,
    Gcn,
    GatNoFeatures,
    Gat,
    GinNoFeatures,
    Gin,
    GraphSage,
    Appnp,
    Grit,
    Trans2Vec,
    I2BgnnNoFeatures,
    I2Bgnn,
    Tsgn,
    Ethident,
    TegDetector,
    Bert4Eth,
}

impl Baseline {
    /// All baselines in Table III's row order.
    pub const ALL: [Baseline; 18] = [
        Baseline::DeepWalk,
        Baseline::Node2Vec,
        Baseline::GcnNoFeatures,
        Baseline::Gcn,
        Baseline::GatNoFeatures,
        Baseline::Gat,
        Baseline::GinNoFeatures,
        Baseline::Gin,
        Baseline::GraphSage,
        Baseline::Appnp,
        Baseline::Grit,
        Baseline::Trans2Vec,
        Baseline::I2BgnnNoFeatures,
        Baseline::I2Bgnn,
        Baseline::Tsgn,
        Baseline::Ethident,
        Baseline::TegDetector,
        Baseline::Bert4Eth,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Baseline::DeepWalk => "DeepWalk",
            Baseline::Node2Vec => "Node2Vec",
            Baseline::GcnNoFeatures => "GCN(w/o node feature)",
            Baseline::Gcn => "GCN",
            Baseline::GatNoFeatures => "GAT(w/o node feature)",
            Baseline::Gat => "GAT",
            Baseline::GinNoFeatures => "GIN(w/o node feature)",
            Baseline::Gin => "GIN",
            Baseline::GraphSage => "GraphSAGE",
            Baseline::Appnp => "APPNP",
            Baseline::Grit => "GRIT",
            Baseline::Trans2Vec => "Trans2Vec",
            Baseline::I2BgnnNoFeatures => "I2BGNN(w/o node feature)",
            Baseline::I2Bgnn => "I2BGNN",
            Baseline::Tsgn => "TSGN",
            Baseline::Ethident => "Ethident",
            Baseline::TegDetector => "TEGDetector",
            Baseline::Bert4Eth => "BERT4ETH",
        }
    }

    fn uses_node_features(self) -> bool {
        !matches!(
            self,
            Baseline::GcnNoFeatures
                | Baseline::GatNoFeatures
                | Baseline::GinNoFeatures
                | Baseline::I2BgnnNoFeatures
        )
    }
}

/// Baseline-runner options.
#[derive(Clone, Copy, Debug)]
pub struct BaselineConfig {
    pub train: TrainConfig,
    pub hidden: usize,
    pub t_slices: usize,
    pub embed: EmbedConfig,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            train: TrainConfig::default(),
            hidden: 32,
            t_slices: 10,
            embed: EmbedConfig::default(),
        }
    }
}

fn run_gnn_baseline<M: GraphModel>(
    model: M,
    mut store: ParamStore,
    lowered: &LoweredDataset,
    train: TrainConfig,
) -> (Vec<f64>, Vec<bool>) {
    let train_graphs = lowered.train_graphs();
    train_model(&model, &mut store, &train_graphs, train);
    let scores = predict_model(&model, &store, &lowered.test_graphs());
    (scores, lowered.test_labels())
}

/// Run several baselines concurrently; returns metrics in the order of
/// `baselines`. Every baseline seeds its own generators from
/// `config.train.seed`, so the results match running them one by one.
pub fn run_baselines(
    baselines: &[Baseline],
    dataset: &GraphDataset,
    train_frac: f64,
    config: &BaselineConfig,
    threads: usize,
) -> Vec<(Baseline, Metrics)> {
    par::par_map(threads, baselines, |&b| (b, run_baseline(b, dataset, train_frac, config)))
}

/// Run one baseline; returns Table III-style percentage metrics.
pub fn run_baseline(
    baseline: Baseline,
    dataset: &GraphDataset,
    train_frac: f64,
    config: &BaselineConfig,
) -> Metrics {
    let _span = obs::span("baseline.run");
    obs::info!("baseline", "{} on {}: starting", baseline.name(), dataset.class.name());
    let (scores, labels) = baseline_scores(baseline, dataset, train_frac, config);
    let metrics = score_metrics(&scores, &labels);
    obs::counter_add("baseline.runs", 1);
    obs::info!(
        "baseline",
        "{} on {}: F1 {:.2} (P {:.2} R {:.2})",
        baseline.name(),
        dataset.class.name(),
        metrics.f1,
        metrics.precision,
        metrics.recall
    );
    metrics
}

/// Run one baseline; returns `(test_scores, test_labels)`.
pub fn baseline_scores(
    baseline: Baseline,
    dataset: &GraphDataset,
    train_frac: f64,
    config: &BaselineConfig,
) -> (Vec<f64>, Vec<bool>) {
    match baseline {
        Baseline::DeepWalk => {
            run_embedding_baseline(EmbedKind::DeepWalk, dataset, train_frac, &config.embed)
        }
        Baseline::Node2Vec => {
            run_embedding_baseline(EmbedKind::Node2Vec, dataset, train_frac, &config.embed)
        }
        Baseline::Trans2Vec => {
            run_embedding_baseline(EmbedKind::Trans2Vec, dataset, train_frac, &config.embed)
        }
        _ => {
            let lowered = LoweredDataset::new(
                dataset,
                config.t_slices,
                baseline.uses_node_features(),
                train_frac,
                config.train.seed,
            );
            let d_in = lowered.tensors[0].x.cols();
            let h = config.hidden;
            let mut store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(config.train.seed ^ 0xBA5E11);
            match baseline {
                Baseline::Gcn | Baseline::GcnNoFeatures => {
                    let m = GcnBaseline::new(&mut store, &mut rng, d_in, h);
                    run_gnn_baseline(m, store, &lowered, config.train)
                }
                Baseline::Gat | Baseline::GatNoFeatures => {
                    let m = GatBaseline::new(&mut store, &mut rng, d_in, h, 2);
                    run_gnn_baseline(m, store, &lowered, config.train)
                }
                Baseline::Gin | Baseline::GinNoFeatures => {
                    let m = GinBaseline::new(&mut store, &mut rng, d_in, h);
                    run_gnn_baseline(m, store, &lowered, config.train)
                }
                Baseline::GraphSage => {
                    let m = SageBaseline::new(&mut store, &mut rng, d_in, h);
                    run_gnn_baseline(m, store, &lowered, config.train)
                }
                Baseline::Appnp => {
                    let m = AppnpBaseline::new(&mut store, &mut rng, d_in, h);
                    run_gnn_baseline(m, store, &lowered, config.train)
                }
                Baseline::Grit => {
                    let m = GritBaseline::new(&mut store, &mut rng, d_in, h);
                    run_gnn_baseline(m, store, &lowered, config.train)
                }
                Baseline::I2Bgnn | Baseline::I2BgnnNoFeatures => {
                    let m = I2BgnnBaseline::new(&mut store, &mut rng, d_in, h);
                    run_gnn_baseline(m, store, &lowered, config.train)
                }
                Baseline::Tsgn => {
                    let m = TsgnBaseline::new(&mut store, &mut rng, h);
                    run_gnn_baseline(m, store, &lowered, config.train)
                }
                Baseline::Ethident => {
                    let m = EthidentBaseline::new(&mut store, &mut rng, d_in, h);
                    run_gnn_baseline(m, store, &lowered, config.train)
                }
                Baseline::TegDetector => {
                    let m =
                        TegDetectorBaseline::new(&mut store, &mut rng, d_in, h, config.t_slices);
                    run_gnn_baseline(m, store, &lowered, config.train)
                }
                Baseline::Bert4Eth => {
                    let m = Bert4EthBaseline::new(&mut store, &mut rng, h);
                    run_gnn_baseline(m, store, &lowered, config.train)
                }
                Baseline::DeepWalk | Baseline::Node2Vec | Baseline::Trans2Vec => unreachable!(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eth_graph::SamplerConfig;
    use eth_sim::{AccountClass, Benchmark, DatasetScale};

    #[test]
    fn every_baseline_runs_on_a_tiny_dataset() {
        let scale = DatasetScale {
            exchange: 8,
            ico_wallet: 0,
            mining: 0,
            phish_hack: 0,
            bridge: 0,
            defi: 0,
        };
        let bench = Benchmark::generate(scale, SamplerConfig::new(8, 1), 2);
        let d = bench.dataset(AccountClass::Exchange);
        let mut config = BaselineConfig::default();
        config.train.epochs = 2;
        config.hidden = 8;
        config.t_slices = 3;
        config.embed.walks.walks_per_node = 2;
        config.embed.skipgram.dim = 8;
        for b in Baseline::ALL {
            let m = run_baseline(b, d, 0.75, &config);
            assert!((0.0..=100.0).contains(&m.f1), "{}: f1 out of range: {:?}", b.name(), m);
        }
    }
}
