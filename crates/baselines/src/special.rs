//! Ethereum-specific de-anonymization baselines: TSGN, Ethident and
//! TEGDetector (Table III rows 15-17).

use crate::harness::GraphModel;
use gnn::layers::GcnLayer;
use gnn::{GraphTensors, GsgConfig, GsgEncoder};
use nn::{Activation, Ctx, GruCell, Linear, ParamId, ParamStore};
use rand::Rng;
use tensor::{Tape, Tensor, Var};

/// TSGN (Wang et al.): classify the **transaction subgraph network** — the
/// line graph whose nodes are the original merged edges (with `[w, t]`
/// features) and whose edges connect transactions sharing an endpoint.
pub struct TsgnBaseline {
    l1: GcnLayer,
    l2: GcnLayer,
    head: Linear,
}

impl TsgnBaseline {
    pub fn new(store: &mut ParamStore, rng: &mut impl Rng, hidden: usize) -> Self {
        Self {
            l1: GcnLayer::new(store, rng, "tsgn.l1", 2, hidden, Activation::Relu),
            l2: GcnLayer::new(store, rng, "tsgn.l2", hidden, hidden, Activation::Relu),
            head: Linear::new(store, rng, "tsgn.head", hidden, 2, Activation::None),
        }
    }

    /// Build the line-graph adjacency (normalised with self-loops) and the
    /// per-transaction `[w, t]` features from a lowered subgraph.
    fn line_graph(g: &GraphTensors) -> (Tensor, Tensor) {
        let edges = g.real_edges();
        let e = edges.len();
        if e == 0 {
            return (Tensor::eye(1), Tensor::zeros(1, 2));
        }
        let mut feats = Tensor::zeros(e, 2);
        for i in 0..e {
            feats.set(i, 0, g.edge_feat.get(i, 0));
            feats.set(i, 1, g.edge_feat.get(i, 1));
        }
        let mut adj = Tensor::zeros(e, e);
        for i in 0..e {
            for j in (i + 1)..e {
                let (a, b) = edges[i];
                let (c, d) = edges[j];
                if a == c || a == d || b == c || b == d {
                    adj.set(i, j, 1.0);
                    adj.set(j, i, 1.0);
                }
            }
        }
        // Symmetric normalisation with self-loops.
        for i in 0..e {
            adj.set(i, i, 1.0);
        }
        let deg: Vec<f32> = (0..e).map(|r| adj.row(r).iter().sum()).collect();
        for r in 0..e {
            for c in 0..e {
                let v = adj.get(r, c) / (deg[r] * deg[c]).sqrt();
                adj.set(r, c, v);
            }
        }
        (adj, feats)
    }
}

impl GraphModel for TsgnBaseline {
    fn forward(&self, tape: &mut Tape, ctx: &mut Ctx, store: &ParamStore, g: &GraphTensors) -> Var {
        let (adj_t, feat_t) = Self::line_graph(g);
        let adj = tape.constant(adj_t);
        let x = tape.constant(feat_t);
        let h = self.l1.forward(tape, ctx, store, adj, x);
        let h = self.l2.forward(tape, ctx, store, adj, h);
        let pooled = tape.mean_pool_rows(h);
        self.head.forward(tape, ctx, store, pooled)
    }
}

/// Ethident (Zhou et al.): a hierarchical graph-attention account encoder.
/// Architecturally this is the paper's GSG branch used stand-alone (the GSG
/// module is explicitly Ethident-style), trained with plain cross-entropy.
pub struct EthidentBaseline {
    encoder: GsgEncoder,
}

impl EthidentBaseline {
    pub fn new(store: &mut ParamStore, rng: &mut impl Rng, d_in: usize, hidden: usize) -> Self {
        let cfg = GsgConfig { d_in, hidden, d_out: hidden / 2, ..GsgConfig::default() };
        Self { encoder: GsgEncoder::new(store, rng, cfg) }
    }
}

impl GraphModel for EthidentBaseline {
    fn forward(&self, tape: &mut Tape, ctx: &mut Ctx, store: &ParamStore, g: &GraphTensors) -> Var {
        self.encoder.forward(tape, ctx, store, g).logits
    }
}

/// TEGDetector (Zheng et al.): per-time-slice GCN embeddings combined by a
/// GRU and learned time coefficients.
pub struct TegDetectorBaseline {
    input_proj: Linear,
    gcn: GcnLayer,
    gru: GruCell,
    time_attn: ParamId,
    head: Linear,
    t_slices: usize,
}

impl TegDetectorBaseline {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        d_in: usize,
        hidden: usize,
        t_slices: usize,
    ) -> Self {
        Self {
            input_proj: Linear::new(store, rng, "teg.in", d_in, hidden, Activation::Tanh),
            gcn: GcnLayer::new(store, rng, "teg.gcn", hidden, hidden, Activation::Relu),
            gru: GruCell::new(store, rng, "teg.gru", hidden),
            time_attn: store.zeros("teg.attn", 1, t_slices),
            head: Linear::new(store, rng, "teg.head", hidden, 2, Activation::None),
            t_slices,
        }
    }
}

impl GraphModel for TegDetectorBaseline {
    fn forward(&self, tape: &mut Tape, ctx: &mut Ctx, store: &ParamStore, g: &GraphTensors) -> Var {
        let x = tape.constant(g.x.clone());
        let node_h = self.input_proj.forward(tape, ctx, store, x);
        // Per-slice graph embedding: GCN then mean pool, evolved by a GRU
        // over the (1, hidden) slice summaries.
        let mut slice_embs: Option<Var> = None;
        let mut state: Option<Var> = None;
        for t in 0..self.t_slices {
            let adj_tensor = g.slice_adj.get(t).unwrap_or_else(|| g.slice_adj.last().unwrap());
            let adj = tape.constant(adj_tensor.clone());
            let u = self.gcn.forward(tape, ctx, store, adj, node_h);
            let pooled = tape.mean_pool_rows(u);
            let new_state = match state {
                None => pooled,
                Some(prev) => self.gru.forward(tape, ctx, store, pooled, prev),
            };
            state = Some(new_state);
            slice_embs = Some(match slice_embs {
                None => new_state,
                Some(acc) => tape.concat_rows(acc, new_state),
            });
        }
        let stack = slice_embs.expect("slices"); // (T, hidden)
        let attn = ctx.var(tape, store, self.time_attn);
        let alpha = tape.softmax_rows(attn);
        let summary = tape.matmul(alpha, stack);
        self.head.forward(tape, ctx, store, summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{predict_model, train_model, TrainConfig};
    use eth_graph::{AccountKind, LocalTx, Subgraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(label: usize, big: bool) -> GraphTensors {
        let v = if big { 60.0 } else { 0.1 };
        let g = Subgraph::from_parts(
            (0..4).collect(),
            vec![AccountKind::Eoa; 4],
            (0..6)
                .map(|i| LocalTx {
                    src: i % 4,
                    dst: (i + 1) % 4,
                    value: v,
                    timestamp: if big { i as u64 } else { i as u64 * 500 },
                    fee: 0.002,
                    contract_call: false,
                })
                .collect(),
            Some(label),
        );
        GraphTensors::from_subgraph(&g, 4)
    }

    fn fits<M: GraphModel>(model: M, mut store: ParamStore) {
        let (pos, neg) = (toy(1, true), toy(0, false));
        let graphs = vec![&pos, &neg];
        train_model(
            &model,
            &mut store,
            &graphs,
            TrainConfig { epochs: 120, batch_size: 2, lr: 0.02, seed: 5 },
        );
        let s = predict_model(&model, &store, &graphs);
        assert!(s[0] > 0.7 && s[1] < 0.3, "{s:?}");
    }

    #[test]
    fn tsgn_line_graph_is_valid() {
        let g = toy(1, true);
        let (adj, feats) = TsgnBaseline::line_graph(&g);
        let e = g.real_edges().len();
        assert_eq!(adj.shape(), (e, e));
        assert_eq!(feats.shape(), (e, 2));
        // Symmetric.
        for i in 0..e {
            for j in 0..e {
                assert!((adj.get(i, j) - adj.get(j, i)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn tsgn_fits_toy() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut store = ParamStore::new();
        let model = TsgnBaseline::new(&mut store, &mut rng, 16);
        fits(model, store);
    }

    #[test]
    fn ethident_fits_toy() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let model = EthidentBaseline::new(&mut store, &mut rng, 15, 16);
        fits(model, store);
    }

    #[test]
    fn tegdetector_fits_toy() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut store = ParamStore::new();
        let model = TegDetectorBaseline::new(&mut store, &mut rng, 15, 16, 4);
        fits(model, store);
    }
}
