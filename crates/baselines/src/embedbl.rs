//! Graph-embedding baselines (DeepWalk, Node2Vec, Trans2Vec): per-subgraph
//! random-walk embeddings, mean-pooled into a graph vector, classified with
//! logistic regression.

use crate::harness::LogisticRegression;
use embed::{
    mean_pool, node2vec_walks, skipgram, trans2vec_walks, uniform_walks, SkipGramConfig, WalkConfig,
};
use eth_graph::Subgraph;
use eth_sim::{GraphDataset, POSITIVE};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which walk strategy feeds the skip-gram model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EmbedKind {
    DeepWalk,
    /// Node2Vec with return parameter `p` and in-out parameter `q`.
    Node2Vec,
    /// Trans2Vec with amount/timestamp-biased walks.
    Trans2Vec,
}

/// Embedding-baseline hyper-parameters (paper: walk length 30, dim 64; the
/// walk count is reduced from 200 for tractability — it saturates early on
/// ~100-node subgraphs).
#[derive(Clone, Copy, Debug)]
pub struct EmbedConfig {
    pub walks: WalkConfig,
    pub skipgram: SkipGramConfig,
    pub node2vec_p: f64,
    pub node2vec_q: f64,
    pub trans2vec_alpha: f64,
    pub seed: u64,
}

impl Default for EmbedConfig {
    fn default() -> Self {
        Self {
            walks: WalkConfig { walk_length: 30, walks_per_node: 5 },
            skipgram: SkipGramConfig { dim: 64, window: 5, negatives: 5, epochs: 1, lr: 0.025 },
            node2vec_p: 0.5,
            node2vec_q: 2.0,
            trans2vec_alpha: 0.5,
            seed: 97,
        }
    }
}

/// Mean-pooled graph embedding of one subgraph.
pub fn embed_graph(kind: EmbedKind, graph: &Subgraph, config: &EmbedConfig) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let adj = graph.undirected_adjacency();
    let walks = match kind {
        EmbedKind::DeepWalk => uniform_walks(&adj, config.walks, &mut rng),
        EmbedKind::Node2Vec => {
            node2vec_walks(&adj, config.node2vec_p, config.node2vec_q, config.walks, &mut rng)
        }
        EmbedKind::Trans2Vec => {
            trans2vec_walks(graph, config.trans2vec_alpha, config.walks, &mut rng)
        }
    };
    let emb = skipgram(&walks, graph.n(), config.skipgram, &mut rng);
    mean_pool(&emb).into_iter().map(f64::from).collect()
}

/// Run one embedding baseline end-to-end on a dataset; returns
/// `(test_scores, test_labels)`.
pub fn run_embedding_baseline(
    kind: EmbedKind,
    dataset: &GraphDataset,
    train_frac: f64,
    config: &EmbedConfig,
) -> (Vec<f64>, Vec<bool>) {
    let embeddings: Vec<Vec<f64>> =
        dataset.graphs.iter().map(|g| embed_graph(kind, g, config)).collect();
    let labels: Vec<bool> = dataset.graphs.iter().map(|g| g.label == Some(POSITIVE)).collect();
    let (train_idx, test_idx) = dataset.split(train_frac, config.seed);
    let train_x: Vec<Vec<f64>> = train_idx.iter().map(|&i| embeddings[i].clone()).collect();
    let train_y: Vec<bool> = train_idx.iter().map(|&i| labels[i]).collect();
    let lr = LogisticRegression::fit(&train_x, &train_y, 400, 0.5, 1e-4);
    let test_x: Vec<Vec<f64>> = test_idx.iter().map(|&i| embeddings[i].clone()).collect();
    let test_y: Vec<bool> = test_idx.iter().map(|&i| labels[i]).collect();
    (lr.predict_proba_all(&test_x), test_y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eth_graph::{AccountKind, LocalTx};

    fn ring(n: usize, value: f64, label: usize) -> Subgraph {
        Subgraph::from_parts(
            (0..n).collect(),
            vec![AccountKind::Eoa; n],
            (0..n)
                .map(|i| LocalTx {
                    src: i,
                    dst: (i + 1) % n,
                    value,
                    timestamp: i as u64,
                    fee: 0.0,
                    contract_call: false,
                })
                .collect(),
            Some(label),
        )
    }

    #[test]
    fn embeddings_have_configured_dimension() {
        let g = ring(8, 1.0, 1);
        let cfg = EmbedConfig {
            skipgram: SkipGramConfig { dim: 12, epochs: 1, ..Default::default() },
            ..Default::default()
        };
        for kind in [EmbedKind::DeepWalk, EmbedKind::Node2Vec, EmbedKind::Trans2Vec] {
            let e = embed_graph(kind, &g, &cfg);
            assert_eq!(e.len(), 12, "{kind:?}");
            assert!(e.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn embedding_is_deterministic() {
        let g = ring(6, 2.0, 1);
        let cfg = EmbedConfig::default();
        assert_eq!(
            embed_graph(EmbedKind::DeepWalk, &g, &cfg),
            embed_graph(EmbedKind::DeepWalk, &g, &cfg)
        );
    }
}
