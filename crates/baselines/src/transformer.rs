//! Transformer-style baselines: GRIT (graph transformer without message
//! passing) and BERT4ETH (sequence transformer over the centre account's
//! transactions). Both are reduced-scale reimplementations that keep the
//! architectural shape of the originals.

use crate::harness::GraphModel;
use gnn::GraphTensors;
use nn::{Activation, Ctx, Linear, Mlp, ParamId, ParamStore};
use rand::Rng;
use tensor::{Tape, Tensor, Var};

/// One pre-norm-free self-attention block with a feed-forward sublayer and
/// residual connections.
pub struct AttentionBlock {
    wq: ParamId,
    wk: ParamId,
    wv: ParamId,
    ffn: Mlp,
    scale: f32,
}

impl AttentionBlock {
    pub fn new(store: &mut ParamStore, rng: &mut impl Rng, name: &str, d: usize) -> Self {
        Self {
            wq: store.xavier(format!("{name}.wq"), d, d, rng),
            wk: store.xavier(format!("{name}.wk"), d, d, rng),
            wv: store.xavier(format!("{name}.wv"), d, d, rng),
            ffn: Mlp::new(store, rng, &format!("{name}.ffn"), &[d, 2 * d, d], Activation::Relu),
            scale: 1.0 / (d as f32).sqrt(),
        }
    }

    /// `bias` is an optional `(n, n)` additive attention bias (GRIT injects
    /// graph structure here); `x` is `(n, d)`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        ctx: &mut Ctx,
        store: &ParamStore,
        x: Var,
        bias: Option<Var>,
    ) -> Var {
        let wq = ctx.var(tape, store, self.wq);
        let wk = ctx.var(tape, store, self.wk);
        let wv = ctx.var(tape, store, self.wv);
        let q = tape.matmul(x, wq);
        let k = tape.matmul(x, wk);
        let v = tape.matmul(x, wv);
        let kt = tape.transpose(k);
        let scores = tape.matmul(q, kt);
        let mut scores = tape.scale(scores, self.scale);
        if let Some(b) = bias {
            scores = tape.add(scores, b);
        }
        let attn = tape.softmax_rows(scores);
        let mixed = tape.matmul(attn, v);
        let res1 = tape.add(x, mixed);
        let ffn_out = self.ffn.forward(tape, ctx, store, res1);
        tape.add(res1, ffn_out)
    }
}

/// GRIT-lite: tokens are nodes; graph structure enters only through a
/// learned additive attention bias on the adjacency and a degree channel —
/// no message passing.
pub struct GritBaseline {
    embed: Linear,
    blocks: Vec<AttentionBlock>,
    /// Scalar weight of the adjacency attention bias.
    adj_bias: ParamId,
    head: Linear,
}

impl GritBaseline {
    pub fn new(store: &mut ParamStore, rng: &mut impl Rng, d_in: usize, hidden: usize) -> Self {
        Self {
            // +1 input channel for the degree encoding.
            embed: Linear::new(store, rng, "grit.embed", d_in + 1, hidden, Activation::None),
            blocks: (0..2)
                .map(|i| AttentionBlock::new(store, rng, &format!("grit.b{i}"), hidden))
                .collect(),
            adj_bias: store.add("grit.adj_bias", Tensor::scalar(1.0)),
            head: Linear::new(store, rng, "grit.head", hidden, 2, Activation::None),
        }
    }
}

impl GraphModel for GritBaseline {
    fn forward(&self, tape: &mut Tape, ctx: &mut Ctx, store: &ParamStore, g: &GraphTensors) -> Var {
        // Degree encoding appended to node features.
        let mut deg = vec![0.0f32; g.n];
        for (u, v) in g.real_edges() {
            deg[u] += 1.0;
            deg[v] += 1.0;
        }
        let deg_col = Tensor::from_fn(g.n, 1, |r, _| (1.0 + deg[r]).ln() * 0.2);
        let x = tape.constant(g.x.concat_cols(&deg_col));
        let h0 = self.embed.forward(tape, ctx, store, x);

        // Additive structural bias: b · Â (learned scalar times normalised
        // adjacency).
        let adj = tape.constant(g.gsg_adj.clone());
        let b = ctx.var(tape, store, self.adj_bias);
        let ones = tape.constant(Tensor::ones(g.n, 1));
        let b_col = tape.matmul(ones, b); // (n, 1) of b
        let bias = tape.mul_col_broadcast(adj, b_col);

        let mut h = h0;
        for block in &self.blocks {
            h = block.forward(tape, ctx, store, h, Some(bias));
        }
        let pooled = tape.mean_pool_rows(h);
        self.head.forward(tape, ctx, store, pooled)
    }
}

/// Sinusoidal positional encodings, `(len, d)`.
fn positional_encoding(len: usize, d: usize) -> Tensor {
    Tensor::from_fn(len, d, |pos, i| {
        let rate = 1.0 / 10_000f32.powf((2 * (i / 2)) as f32 / d as f32);
        let angle = pos as f32 * rate;
        if i % 2 == 0 {
            angle.sin()
        } else {
            angle.cos()
        }
    })
}

/// BERT4ETH-lite: a small Transformer encoder over the centre account's
/// transaction sequence, trained from scratch (the original is pre-trained
/// at scale; the architectural shape — sequence attention over transaction
/// tokens — is preserved).
pub struct Bert4EthBaseline {
    embed: Linear,
    blocks: Vec<AttentionBlock>,
    head: Linear,
    hidden: usize,
}

impl Bert4EthBaseline {
    pub fn new(store: &mut ParamStore, rng: &mut impl Rng, hidden: usize) -> Self {
        Self {
            embed: Linear::new(store, rng, "bert.embed", 5, hidden, Activation::None),
            blocks: (0..2)
                .map(|i| AttentionBlock::new(store, rng, &format!("bert.b{i}"), hidden))
                .collect(),
            head: Linear::new(store, rng, "bert.head", hidden, 2, Activation::None),
            hidden,
        }
    }
}

impl GraphModel for Bert4EthBaseline {
    fn forward(&self, tape: &mut Tape, ctx: &mut Ctx, store: &ParamStore, g: &GraphTensors) -> Var {
        let seq = tape.constant(g.center_seq.clone());
        let mut h = self.embed.forward(tape, ctx, store, seq);
        let pe = tape.constant(positional_encoding(g.center_seq.rows(), self.hidden));
        h = tape.add(h, pe);
        for block in &self.blocks {
            h = block.forward(tape, ctx, store, h, None);
        }
        let pooled = tape.mean_pool_rows(h);
        self.head.forward(tape, ctx, store, pooled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{predict_model, train_model, TrainConfig};
    use eth_graph::{AccountKind, LocalTx, Subgraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(label: usize, big: bool) -> GraphTensors {
        let v = if big { 80.0 } else { 0.05 };
        let g = Subgraph::from_parts(
            (0..4).collect(),
            vec![AccountKind::Eoa; 4],
            (1..4)
                .map(|i| LocalTx {
                    src: 0,
                    dst: i,
                    value: v,
                    timestamp: i as u64 * 100,
                    fee: 0.001,
                    contract_call: false,
                })
                .collect(),
            Some(label),
        );
        GraphTensors::from_subgraph(&g, 3)
    }

    #[test]
    fn positional_encoding_values() {
        let pe = positional_encoding(4, 6);
        assert_eq!(pe.shape(), (4, 6));
        assert_eq!(pe.get(0, 0), 0.0); // sin(0)
        assert_eq!(pe.get(0, 1), 1.0); // cos(0)
        assert!((pe.get(1, 0) - 1f32.sin()).abs() < 1e-6);
    }

    #[test]
    fn grit_fits_toy_pair() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let model = GritBaseline::new(&mut store, &mut rng, 15, 16);
        let (pos, neg) = (toy(1, true), toy(0, false));
        let graphs = vec![&pos, &neg];
        train_model(
            &model,
            &mut store,
            &graphs,
            TrainConfig { epochs: 100, batch_size: 2, lr: 0.02, seed: 2 },
        );
        let s = predict_model(&model, &store, &graphs);
        assert!(s[0] > 0.7 && s[1] < 0.3, "{s:?}");
    }

    #[test]
    fn bert4eth_fits_toy_pair() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut store = ParamStore::new();
        let model = Bert4EthBaseline::new(&mut store, &mut rng, 16);
        let (pos, neg) = (toy(1, true), toy(0, false));
        let graphs = vec![&pos, &neg];
        train_model(
            &model,
            &mut store,
            &graphs,
            TrainConfig { epochs: 100, batch_size: 2, lr: 0.02, seed: 3 },
        );
        let s = predict_model(&model, &store, &graphs);
        assert!(s[0] > 0.7 && s[1] < 0.3, "{s:?}");
    }
}
