//! # baselines — the comparison methods of Table III
//!
//! From-scratch reimplementations of every baseline the paper compares
//! against, at reduced scale but with the original architectural shape:
//!
//! * graph embeddings: DeepWalk, Node2Vec, Trans2Vec (`embed` crate walks +
//!   skip-gram, logistic-regression readout),
//! * GNNs: GCN, GAT, GIN, GraphSAGE, APPNP, I²BGNN — each with and without
//!   the 15-dim node features where the paper reports both,
//! * transformers: GRIT-lite (attention with a structural bias, no message
//!   passing), BERT4ETH-lite (sequence encoder over centre transactions),
//! * Ethereum-specific: TSGN (line-graph GCN), Ethident (hierarchical
//!   attention), TEGDetector (time-slice GCN + GRU).
//!
//! Entry point: [`run_baseline`] / [`Baseline::ALL`].

mod embedbl;
mod gnnmodels;
mod harness;
mod runner;
mod special;
mod transformer;

pub use embedbl::{embed_graph, run_embedding_baseline, EmbedConfig, EmbedKind};
pub use gnnmodels::{
    AppnpBaseline, GatBaseline, GcnBaseline, GinBaseline, I2BgnnBaseline, SageBaseline,
};
pub use harness::{
    predict_model, score_metrics, train_model, GraphModel, LogisticRegression, LoweredDataset,
    TrainConfig,
};
pub use runner::{baseline_scores, run_baseline, run_baselines, Baseline, BaselineConfig};
pub use special::{EthidentBaseline, TegDetectorBaseline, TsgnBaseline};
pub use transformer::{AttentionBlock, Bert4EthBaseline, GritBaseline};
