//! Shared training/evaluation harness for graph-classification baselines.

use eth_sim::{GraphDataset, POSITIVE};
use gnn::GraphTensors;
use nn::metrics::Metrics;
use nn::{Adam, Ctx, ParamStore};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};
use std::sync::Arc;
use tensor::{Tape, Var};

/// A model that maps one lowered subgraph to class logits `(1, 2)`.
pub trait GraphModel {
    fn forward(&self, tape: &mut Tape, ctx: &mut Ctx, store: &ParamStore, g: &GraphTensors) -> Var;
}

/// Baseline training hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 12, batch_size: 8, lr: 0.005, seed: 42 }
    }
}

/// Train a [`GraphModel`] with cross-entropy on labelled graphs.
pub fn train_model<M: GraphModel>(
    model: &M,
    store: &mut ParamStore,
    graphs: &[&GraphTensors],
    config: TrainConfig,
) {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xBA5E);
    let mut opt = Adam::new(config.lr);
    for _ in 0..config.epochs {
        let mut idx: Vec<usize> = (0..graphs.len()).collect();
        idx.shuffle(&mut rng);
        for batch in idx.chunks(config.batch_size.max(1)) {
            store.zero_grad();
            let mut tape = Tape::new();
            let mut ctx = Ctx::new(store);
            let mut logits: Option<Var> = None;
            let mut targets = Vec::with_capacity(batch.len());
            for &gi in batch {
                let out = model.forward(&mut tape, &mut ctx, store, graphs[gi]);
                logits = Some(match logits {
                    None => out,
                    Some(acc) => tape.concat_rows(acc, out),
                });
                targets.push(graphs[gi].label.expect("labelled graph"));
            }
            let loss = tape.cross_entropy(logits.expect("non-empty batch"), Arc::new(targets));
            tape.backward(loss);
            ctx.accumulate_grads(&tape, store);
            store.clip_grad_norm(5.0);
            opt.step(store);
        }
    }
}

/// P(positive) for each graph under a trained model.
pub fn predict_model<M: GraphModel>(
    model: &M,
    store: &ParamStore,
    graphs: &[&GraphTensors],
) -> Vec<f64> {
    graphs
        .iter()
        .map(|g| {
            let mut tape = Tape::new();
            let mut ctx = Ctx::new(store);
            let logits = model.forward(&mut tape, &mut ctx, store, g);
            let probs = tape.softmax_rows(logits);
            tape.value(probs).get(0, 1) as f64
        })
        .collect()
}

/// Lower a dataset once (with or without the 15-dim node features) and
/// return tensors, labels and the standard split.
pub struct LoweredDataset {
    pub tensors: Vec<GraphTensors>,
    pub labels: Vec<bool>,
    pub train_idx: Vec<usize>,
    pub test_idx: Vec<usize>,
}

impl LoweredDataset {
    pub fn new(
        dataset: &GraphDataset,
        t_slices: usize,
        with_features: bool,
        train_frac: f64,
        seed: u64,
    ) -> Self {
        let tensors: Vec<GraphTensors> = dataset
            .graphs
            .iter()
            .map(|g| {
                if with_features {
                    GraphTensors::from_subgraph(g, t_slices)
                } else {
                    GraphTensors::without_node_features(g, t_slices)
                }
            })
            .collect();
        let labels = dataset.graphs.iter().map(|g| g.label == Some(POSITIVE)).collect();
        let (train_idx, test_idx) = dataset.split(train_frac, seed);
        Self { tensors, labels, train_idx, test_idx }
    }

    pub fn train_graphs(&self) -> Vec<&GraphTensors> {
        self.train_idx.iter().map(|&i| &self.tensors[i]).collect()
    }

    pub fn test_graphs(&self) -> Vec<&GraphTensors> {
        self.test_idx.iter().map(|&i| &self.tensors[i]).collect()
    }

    pub fn test_labels(&self) -> Vec<bool> {
        self.test_idx.iter().map(|&i| self.labels[i]).collect()
    }

    pub fn train_labels(&self) -> Vec<bool> {
        self.train_idx.iter().map(|&i| self.labels[i]).collect()
    }
}

/// Metrics from scores at the 0.5 threshold (percentages, as in Table III).
pub fn score_metrics(scores: &[f64], labels: &[bool]) -> Metrics {
    Metrics::from_scores(scores, labels, 0.5)
}

/// L2-regularised logistic regression via gradient descent — the simple
/// downstream classifier for the embedding baselines.
pub struct LogisticRegression {
    w: Vec<f64>,
    b: f64,
}

impl LogisticRegression {
    pub fn fit(x: &[Vec<f64>], y: &[bool], epochs: usize, lr: f64, l2: f64) -> Self {
        assert_eq!(x.len(), y.len());
        let d = x.first().map_or(0, Vec::len);
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        let n = x.len().max(1) as f64;
        for _ in 0..epochs {
            let mut gw = vec![0.0; d];
            let mut gb = 0.0;
            for (row, &label) in x.iter().zip(y) {
                let z: f64 = row.iter().zip(&w).map(|(&a, &wi)| a * wi).sum::<f64>() + b;
                let p = 1.0 / (1.0 + (-z).exp());
                let err = p - if label { 1.0 } else { 0.0 };
                for (g, &a) in gw.iter_mut().zip(row) {
                    *g += err * a;
                }
                gb += err;
            }
            for (wi, g) in w.iter_mut().zip(&gw) {
                *wi -= lr * (g / n + l2 * *wi);
            }
            b -= lr * gb / n;
        }
        Self { w, b }
    }

    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        let z: f64 = row.iter().zip(&self.w).map(|(&a, &w)| a * w).sum::<f64>() + self.b;
        1.0 / (1.0 + (-z).exp())
    }

    pub fn predict_proba_all(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter().map(|r| self.predict_proba(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logistic_regression_separates_1d() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 10.0 - 2.0]).collect();
        let y: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        let lr = LogisticRegression::fit(&x, &y, 500, 0.5, 1e-4);
        let correct = x.iter().zip(&y).filter(|(r, l)| (lr.predict_proba(r) >= 0.5) == **l).count();
        assert!(correct >= 38, "acc {correct}/40");
    }

    #[test]
    fn logistic_regression_probability_monotone_in_feature() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<bool> = (0..20).map(|i| i >= 10).collect();
        let lr = LogisticRegression::fit(&x, &y, 300, 0.1, 0.0);
        assert!(lr.predict_proba(&[19.0]) > lr.predict_proba(&[0.0]));
    }
}
