//! GNN graph-classification baselines: GCN, GAT, GIN, GraphSAGE, APPNP and
//! I²BGNN (Table III rows 3-11, 13-14).

use crate::harness::GraphModel;
use gnn::layers::{appnp_propagate, GatLayer, GcnLayer, GinLayer, SageLayer};
use gnn::GraphTensors;
use nn::{Activation, Ctx, Linear, Mlp, ParamStore};
use rand::Rng;
use tensor::{Tape, Tensor, Var};

/// Mean-pool node embeddings and classify (the pooling the paper uses for
/// the GCN/GAT/GIN baselines).
fn mean_pool_head(
    tape: &mut Tape,
    ctx: &mut Ctx,
    store: &ParamStore,
    head: &Linear,
    h: Var,
) -> Var {
    let pooled = tape.mean_pool_rows(h);
    head.forward(tape, ctx, store, pooled)
}

/// Binary (0/1) adjacency without self-loops, from the real merged edges.
fn binary_adjacency(g: &GraphTensors) -> Tensor {
    let mut a = Tensor::zeros(g.n, g.n);
    for (u, v) in g.real_edges() {
        if u != v {
            a.set(u, v, 1.0);
            a.set(v, u, 1.0);
        }
    }
    a
}

/// Row-normalised neighbour-mean operator without self-loops (GraphSAGE).
fn mean_adjacency(g: &GraphTensors) -> Tensor {
    let mut a = binary_adjacency(g);
    for r in 0..g.n {
        let s: f32 = a.row(r).iter().sum();
        if s > 0.0 {
            for x in a.row_mut(r) {
                *x /= s;
            }
        }
    }
    a
}

/// Two-layer GCN with mean pooling.
pub struct GcnBaseline {
    l1: GcnLayer,
    l2: GcnLayer,
    head: Linear,
}

impl GcnBaseline {
    pub fn new(store: &mut ParamStore, rng: &mut impl Rng, d_in: usize, hidden: usize) -> Self {
        Self {
            l1: GcnLayer::new(store, rng, "gcn.l1", d_in, hidden, Activation::Relu),
            l2: GcnLayer::new(store, rng, "gcn.l2", hidden, hidden, Activation::Relu),
            head: Linear::new(store, rng, "gcn.head", hidden, 2, Activation::None),
        }
    }
}

impl GraphModel for GcnBaseline {
    fn forward(&self, tape: &mut Tape, ctx: &mut Ctx, store: &ParamStore, g: &GraphTensors) -> Var {
        let adj = tape.constant(g.gsg_adj.clone());
        let x = tape.constant(g.x.clone());
        let h = self.l1.forward(tape, ctx, store, adj, x);
        let h = self.l2.forward(tape, ctx, store, adj, h);
        mean_pool_head(tape, ctx, store, &self.head, h)
    }
}

/// Two-layer multi-head GAT with mean pooling.
pub struct GatBaseline {
    l1: GatLayer,
    l2: GatLayer,
    proj: Linear,
    head: Linear,
}

impl GatBaseline {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        d_in: usize,
        hidden: usize,
        heads: usize,
    ) -> Self {
        assert!(hidden.is_multiple_of(heads));
        Self {
            proj: Linear::new(store, rng, "gat.proj", d_in, hidden, Activation::None),
            l1: GatLayer::new(store, rng, "gat.l1", hidden, hidden / heads, heads),
            l2: GatLayer::new(store, rng, "gat.l2", hidden, hidden / heads, heads),
            head: Linear::new(store, rng, "gat.head", hidden, 2, Activation::None),
        }
    }
}

impl GraphModel for GatBaseline {
    fn forward(&self, tape: &mut Tape, ctx: &mut Ctx, store: &ParamStore, g: &GraphTensors) -> Var {
        let x = tape.constant(g.x.clone());
        let h = self.proj.forward(tape, ctx, store, x);
        let h = self.l1.forward(tape, ctx, store, h, None, &g.src, &g.dst, g.n);
        let h = self.l2.forward(tape, ctx, store, h, None, &g.src, &g.dst, g.n);
        mean_pool_head(tape, ctx, store, &self.head, h)
    }
}

/// Two-layer GIN with mean pooling.
pub struct GinBaseline {
    l1: GinLayer,
    l2: GinLayer,
    head: Linear,
}

impl GinBaseline {
    pub fn new(store: &mut ParamStore, rng: &mut impl Rng, d_in: usize, hidden: usize) -> Self {
        Self {
            l1: GinLayer::new(store, rng, "gin.l1", d_in, hidden),
            l2: GinLayer::new(store, rng, "gin.l2", hidden, hidden),
            head: Linear::new(store, rng, "gin.head", hidden, 2, Activation::None),
        }
    }
}

impl GraphModel for GinBaseline {
    fn forward(&self, tape: &mut Tape, ctx: &mut Ctx, store: &ParamStore, g: &GraphTensors) -> Var {
        let adj = tape.constant(binary_adjacency(g));
        let x = tape.constant(g.x.clone());
        let h = self.l1.forward(tape, ctx, store, adj, x);
        let h = self.l2.forward(tape, ctx, store, adj, h);
        mean_pool_head(tape, ctx, store, &self.head, h)
    }
}

/// Two-layer GraphSAGE (mean aggregator) with mean pooling.
pub struct SageBaseline {
    l1: SageLayer,
    l2: SageLayer,
    head: Linear,
}

impl SageBaseline {
    pub fn new(store: &mut ParamStore, rng: &mut impl Rng, d_in: usize, hidden: usize) -> Self {
        Self {
            l1: SageLayer::new(store, rng, "sage.l1", d_in, hidden, Activation::Relu),
            l2: SageLayer::new(store, rng, "sage.l2", hidden, hidden, Activation::Relu),
            head: Linear::new(store, rng, "sage.head", hidden, 2, Activation::None),
        }
    }
}

impl GraphModel for SageBaseline {
    fn forward(&self, tape: &mut Tape, ctx: &mut Ctx, store: &ParamStore, g: &GraphTensors) -> Var {
        let adj = tape.constant(mean_adjacency(g));
        let x = tape.constant(g.x.clone());
        let h = self.l1.forward(tape, ctx, store, adj, x);
        let h = self.l2.forward(tape, ctx, store, adj, h);
        mean_pool_head(tape, ctx, store, &self.head, h)
    }
}

/// APPNP: feature MLP followed by personalised-PageRank propagation.
pub struct AppnpBaseline {
    mlp: Mlp,
    head: Linear,
    alpha: f32,
    k: usize,
}

impl AppnpBaseline {
    pub fn new(store: &mut ParamStore, rng: &mut impl Rng, d_in: usize, hidden: usize) -> Self {
        Self {
            mlp: Mlp::new(store, rng, "appnp.mlp", &[d_in, hidden, hidden], Activation::Relu),
            head: Linear::new(store, rng, "appnp.head", hidden, 2, Activation::None),
            alpha: 0.1,
            k: 10,
        }
    }
}

impl GraphModel for AppnpBaseline {
    fn forward(&self, tape: &mut Tape, ctx: &mut Ctx, store: &ParamStore, g: &GraphTensors) -> Var {
        let x = tape.constant(g.x.clone());
        let z0 = self.mlp.forward(tape, ctx, store, x);
        let adj = tape.constant(g.gsg_adj.clone());
        let z = appnp_propagate(tape, adj, z0, self.alpha, self.k);
        mean_pool_head(tape, ctx, store, &self.head, z)
    }
}

/// I²BGNN (Shen et al., 2021): weighted-adjacency GCN with **max** pooling,
/// mapping transaction-subgraph patterns to identities.
pub struct I2BgnnBaseline {
    l1: GcnLayer,
    l2: GcnLayer,
    head: Linear,
}

impl I2BgnnBaseline {
    pub fn new(store: &mut ParamStore, rng: &mut impl Rng, d_in: usize, hidden: usize) -> Self {
        Self {
            l1: GcnLayer::new(store, rng, "i2b.l1", d_in, hidden, Activation::Relu),
            l2: GcnLayer::new(store, rng, "i2b.l2", hidden, hidden, Activation::Relu),
            head: Linear::new(store, rng, "i2b.head", hidden, 2, Activation::None),
        }
    }
}

impl GraphModel for I2BgnnBaseline {
    fn forward(&self, tape: &mut Tape, ctx: &mut Ctx, store: &ParamStore, g: &GraphTensors) -> Var {
        let adj = tape.constant(g.gsg_adj.clone());
        let x = tape.constant(g.x.clone());
        let h = self.l1.forward(tape, ctx, store, adj, x);
        let h = self.l2.forward(tape, ctx, store, adj, h);
        let pooled = tape.max_pool_rows(h);
        self.head.forward(tape, ctx, store, pooled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{predict_model, train_model, TrainConfig};
    use eth_graph::{AccountKind, LocalTx, Subgraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Dense high-value star vs sparse chain: separable by any GNN.
    fn toy_pair() -> (GraphTensors, GraphTensors) {
        let star = Subgraph::from_parts(
            (0..5).collect(),
            vec![AccountKind::Eoa; 5],
            (1..5)
                .map(|i| LocalTx {
                    src: 0,
                    dst: i,
                    value: 50.0,
                    timestamp: i as u64 * 10,
                    fee: 0.01,
                    contract_call: false,
                })
                .collect(),
            Some(1),
        );
        let chain = Subgraph::from_parts(
            (0..3).collect(),
            vec![AccountKind::Eoa; 3],
            vec![LocalTx {
                src: 0,
                dst: 1,
                value: 0.1,
                timestamp: 7,
                fee: 0.0,
                contract_call: false,
            }],
            Some(0),
        );
        (GraphTensors::from_subgraph(&star, 3), GraphTensors::from_subgraph(&chain, 3))
    }

    fn fits_toy<M: GraphModel>(build: impl Fn(&mut ParamStore, &mut StdRng) -> M) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let model = build(&mut store, &mut rng);
        let (pos, neg) = toy_pair();
        let graphs = vec![&pos, &neg];
        train_model(
            &model,
            &mut store,
            &graphs,
            TrainConfig { epochs: 120, batch_size: 2, lr: 0.02, seed: 1 },
        );
        let scores = predict_model(&model, &store, &graphs);
        assert!(scores[0] > 0.7 && scores[1] < 0.3, "model failed to fit toy pair: {scores:?}");
    }

    #[test]
    fn gcn_fits_toy() {
        fits_toy(|s, r| GcnBaseline::new(s, r, 15, 16));
    }

    #[test]
    fn gat_fits_toy() {
        fits_toy(|s, r| GatBaseline::new(s, r, 15, 16, 2));
    }

    #[test]
    fn gin_fits_toy() {
        fits_toy(|s, r| GinBaseline::new(s, r, 15, 16));
    }

    #[test]
    fn sage_fits_toy() {
        fits_toy(|s, r| SageBaseline::new(s, r, 15, 16));
    }

    #[test]
    fn appnp_fits_toy() {
        fits_toy(|s, r| AppnpBaseline::new(s, r, 15, 16));
    }

    #[test]
    fn i2bgnn_fits_toy() {
        fits_toy(|s, r| I2BgnnBaseline::new(s, r, 15, 16));
    }
}
