//! Offline mini property-testing harness exposing the subset of the
//! `proptest` API this workspace uses: [`Strategy`] with `prop_map` and
//! `prop_flat_map`, range and tuple strategies, [`Just`],
//! `prop::collection::vec`, [`any`], the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`]
//! macros and [`ProptestConfig::with_cases`].
//!
//! There is no shrinking: a failing case panics with the generated inputs'
//! seed so the run is reproducible (generation is deterministic per test
//! name and case index).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How many cases [`proptest!`] runs per property.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of arbitrary values.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// A strategy that always yields (a clone of) the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`]: a strategy whose shape depends
/// on a first-stage sample (e.g. a vector length drawn before its elements).
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

float_range_strategy!(f64, f32);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+ ))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>() as usize
    }
}

/// Strategy for any value of `T` (see [`Arbitrary`]).
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// A range of collection sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            Self { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max_exclusive: n + 1 }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// `prop::` namespace mirror.
pub mod prop {
    pub use crate::collection;
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name keeps each property on its own stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case))
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr, $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::__case_rng(stringify!($name), __case);
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Declare property tests. Supports the optional
/// `#![proptest_config(...)]` header used by the workspace test suites.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body!($cfg, $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body!($crate::ProptestConfig::default(), $($rest)*);
    };
}

/// Assert inside a property; panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Skip the current generated case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_of_tuples(v in prop::collection::vec((0usize..5, any::<bool>()), 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for (n, _) in &v {
                prop_assert!(*n < 5);
            }
        }

        #[test]
        fn mapping_and_assume(v in prop::collection::vec(0u64..100, 0..6).prop_map(|v| v.len())) {
            prop_assume!(v > 0);
            prop_assert!(v < 6);
        }

        #[test]
        fn flat_map_ties_dependent_dimensions(
            (n, v) in (1usize..8).prop_flat_map(|n| (Just(n), prop::collection::vec(0usize..n, n))),
        ) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn case_rng_is_deterministic_per_name_and_case() {
        use rand::Rng;
        let a = crate::__case_rng("t", 3).gen::<u64>();
        let b = crate::__case_rng("t", 3).gen::<u64>();
        let c = crate::__case_rng("t", 4).gen::<u64>();
        let d = crate::__case_rng("u", 3).gen::<u64>();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
