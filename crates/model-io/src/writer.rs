//! Building a model container in memory and flushing it to disk.

use crate::crc::crc32_concat;
use crate::{ModelIoError, FORMAT_VERSION, MAGIC};
use std::io::Write;
use std::path::Path;

/// Accumulates the primitive values of one section as little-endian bytes.
/// Floats are stored as IEEE-754 bit patterns so round-trips are exact.
#[derive(Default)]
pub struct SectionWriter {
    buf: Vec<u8>,
}

impl SectionWriter {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Length-prefixed `f64` slice (bit-exact).
    pub fn put_f64s(&mut self, xs: &[f64]) {
        self.put_u64(xs.len() as u64);
        for &x in xs {
            self.put_f64(x);
        }
    }

    /// Length-prefixed `f32` slice (bit-exact).
    pub fn put_f32s(&mut self, xs: &[f32]) {
        self.put_u64(xs.len() as u64);
        for &x in xs {
            self.put_f32(x);
        }
    }

    /// Length-prefixed index slice.
    pub fn put_usizes(&mut self, xs: &[usize]) {
        self.put_u64(xs.len() as u64);
        for &x in xs {
            self.put_u64(x as u64);
        }
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer and take the raw payload bytes. Besides container
    /// sections, this backs wire frames (the serve protocol), where the
    /// same primitives are framed by the transport instead of a CRC.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Assembles named sections into the final `DBGM` container.
#[derive(Default)]
pub struct ModelWriter {
    sections: Vec<(String, Vec<u8>)>,
}

impl ModelWriter {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a finished section. Section order is preserved in the file.
    pub fn push(&mut self, name: &str, section: SectionWriter) {
        self.sections.push((name.to_string(), section.into_bytes()));
    }

    /// Render the container: magic, version, then each section with its
    /// CRC-32 over name and payload.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, payload) in &self.sections {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(payload);
            out.extend_from_slice(&crc32_concat(&[name.as_bytes(), payload]).to_le_bytes());
        }
        out
    }

    /// Write the container to a file atomically: the bytes land in a
    /// temporary sibling which is then renamed over `path`. A reader — in
    /// particular a live `ModelReader::open_mmap` mapping, whose `&[u8]`
    /// and cached CRC verdicts assume the bytes never change — can never
    /// observe a truncated or half-written container; replacing a model
    /// swaps the inode while existing mappings keep the old bytes.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), ModelIoError> {
        let path = path.as_ref();
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(format!(".tmp.{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp_name);
        let write = (|| {
            let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            f.write_all(&self.to_bytes())?;
            f.flush()?;
            std::fs::rename(&tmp, path)
        })();
        if write.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        Ok(write?)
    }
}
