//! The typed failure modes of model persistence.

use std::fmt;

/// Everything that can go wrong saving or loading a model file. Corrupted
/// or mismatched inputs must map onto one of these variants — panicking on
/// untrusted bytes (or silently loading garbage) is a bug, and the
/// `model-io` property tests enforce that.
#[derive(Debug)]
pub enum ModelIoError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the `DBGM` magic.
    BadMagic { found: [u8; 4] },
    /// The container was written by an incompatible format version.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The byte stream ended before a declared length was satisfied.
    Truncated { context: &'static str },
    /// A section's stored CRC-32 does not match its content.
    ChecksumMismatch { section: String, stored: u32, computed: u32 },
    /// A section the loader requires is absent.
    MissingSection { name: String },
    /// Structurally invalid content (bad enum tag, impossible length,
    /// non-UTF-8 name, model/config mismatch, …).
    Corrupt { context: String },
}

impl fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "i/o error: {e}"),
            ModelIoError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?} (expected \"DBGM\")")
            }
            ModelIoError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported format version {found} (this build reads {}..={supported})",
                    crate::MIN_FORMAT_VERSION
                )
            }
            ModelIoError::Truncated { context } => write!(f, "truncated file while reading {context}"),
            ModelIoError::ChecksumMismatch { section, stored, computed } => write!(
                f,
                "checksum mismatch in section '{section}': stored {stored:08x}, computed {computed:08x}"
            ),
            ModelIoError::MissingSection { name } => write!(f, "missing section '{name}'"),
            ModelIoError::Corrupt { context } => write!(f, "corrupt model file: {context}"),
        }
    }
}

impl std::error::Error for ModelIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ModelIoError {
    fn from(e: std::io::Error) -> Self {
        ModelIoError::Io(e)
    }
}
