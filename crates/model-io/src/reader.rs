//! Parsing and validating a model container.
//!
//! Structural validation (magic, version, section framing) always happens up
//! front; checksum validation is either eager or lazy depending on how the
//! container was opened:
//!
//! - [`ModelReader::from_bytes`] / [`ModelReader::read_from`] verify every
//!   section CRC immediately — by the time a caller holds a
//!   [`SectionReader`], the bytes it walks are known-intact.
//! - [`ModelReader::from_bytes_lenient`] verifies eagerly too, but a
//!   mismatch quarantines only that section instead of rejecting the whole
//!   container.
//! - [`ModelReader::open_mmap`] memory-maps the file and defers each
//!   section's CRC to its first [`ModelReader::section`] call, so a serving
//!   process pays for exactly the sections it touches and N processes share
//!   the mapped pages.
//!
//! In every mode a section whose checksum disagrees is unreadable:
//! [`ModelReader::section`] returns [`ModelIoError::ChecksumMismatch`] with
//! the stored/computed evidence. Remaining failures inside a verified
//! payload (bad enum tag, short payload) are logic-level
//! [`ModelIoError::Corrupt`]/[`ModelIoError::Truncated`] — still typed,
//! still no panic.

use crate::crc::crc32_concat;
use crate::mmap::Map;
use crate::{ModelIoError, FORMAT_VERSION, MAGIC, MAX_NAME_LEN, MIN_FORMAT_VERSION};
use std::ops::Range;
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};

/// A validated model container, indexing sections by name.
#[derive(Debug)]
pub struct ModelReader {
    backing: Backing,
    sections: Vec<SectionMeta>,
}

/// Where the container's bytes live: an owned heap copy (the classic load
/// path) or a read-only file mapping shared with other processes.
#[derive(Debug)]
enum Backing {
    Owned(Vec<u8>),
    Mapped(Map),
}

impl Backing {
    fn bytes(&self) -> &[u8] {
        match self {
            Backing::Owned(v) => v,
            Backing::Mapped(m) => m.bytes(),
        }
    }
}

/// CRC state of one section, advanced monotonically on first touch.
const CRC_UNCHECKED: u8 = 0;
const CRC_OK: u8 = 1;
const CRC_BAD: u8 = 2;

#[derive(Debug)]
struct SectionMeta {
    name: String,
    /// Byte range of the payload within the backing buffer.
    payload: Range<usize>,
    stored: u32,
    /// `CRC_UNCHECKED` → `CRC_OK`/`CRC_BAD`. Racing first touches compute
    /// the same answer over immutable bytes, so relaxed ordering suffices.
    state: AtomicU8,
}

impl SectionMeta {
    fn verify(&self, bytes: &[u8]) -> u8 {
        match self.state.load(Ordering::Relaxed) {
            CRC_UNCHECKED => {
                let computed = crc32_concat(&[self.name.as_bytes(), &bytes[self.payload.clone()]]);
                let state = if computed == self.stored { CRC_OK } else { CRC_BAD };
                self.state.store(state, Ordering::Relaxed);
                state
            }
            state => state,
        }
    }
}

/// A section whose stored checksum disagreed with its payload — the payload
/// is withheld, only the evidence is kept.
#[derive(Debug, Clone)]
pub struct DamagedSection {
    pub name: String,
    pub stored: u32,
    pub computed: u32,
}

/// Cursor over one section's payload.
#[derive(Debug)]
pub struct SectionReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl ModelReader {
    /// Read a container into memory from a file and validate it eagerly.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Self, ModelIoError> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Memory-map a container file read-only. Structure (magic, version,
    /// framing) is validated now; each section's checksum is validated
    /// lazily on its first [`ModelReader::section`] call, so page faults
    /// and CRC work happen only for sections actually touched.
    pub fn open_mmap(path: impl AsRef<Path>) -> Result<Self, ModelIoError> {
        let map = Map::open(path.as_ref())?;
        let sections = Self::parse_structure(map.bytes())?;
        Ok(Self { backing: Backing::Mapped(map), sections })
    }

    /// Validate magic, version, framing and all checksums.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ModelIoError> {
        let (reader, damaged) = Self::from_bytes_lenient(bytes)?;
        match damaged.into_iter().next() {
            None => Ok(reader),
            Some(d) => Err(ModelIoError::ChecksumMismatch {
                section: d.name,
                stored: d.stored,
                computed: d.computed,
            }),
        }
    }

    /// Like [`ModelReader::from_bytes`], but a checksum mismatch quarantines
    /// only the damaged section instead of rejecting the whole container:
    /// the intact sections remain readable and every damaged one is
    /// reported. Reading a quarantined section later yields
    /// [`ModelIoError::ChecksumMismatch`] with the same evidence.
    /// Structural damage (bad magic, version skew, broken framing) is still
    /// a hard error — without intact framing no section can be trusted.
    ///
    /// This is the read half of graceful degradation: `dbg4eth`'s degraded
    /// load path serves whatever branches survived single-section damage.
    pub fn from_bytes_lenient(bytes: &[u8]) -> Result<(Self, Vec<DamagedSection>), ModelIoError> {
        let sections = Self::parse_structure(bytes)?;
        let mut damaged = Vec::new();
        for meta in &sections {
            if meta.verify(bytes) == CRC_BAD {
                damaged.push(DamagedSection {
                    name: meta.name.clone(),
                    stored: meta.stored,
                    computed: crc32_concat(&[meta.name.as_bytes(), &bytes[meta.payload.clone()]]),
                });
            }
        }
        Ok((Self { backing: Backing::Owned(bytes.to_vec()), sections }, damaged))
    }

    /// Walk the framing and record each section's name, payload range and
    /// stored checksum — no CRC work, no payload copies.
    fn parse_structure(bytes: &[u8]) -> Result<Vec<SectionMeta>, ModelIoError> {
        let mut cur = Cursor { buf: bytes, pos: 0 };
        let magic = cur.take(4, "magic")?;
        if magic != MAGIC {
            return Err(ModelIoError::BadMagic { found: [magic[0], magic[1], magic[2], magic[3]] });
        }
        let version = cur.u32("format version")?;
        // Older-but-supported versions share this framing; only the section
        // payloads differ (v2 branch payloads lack the trailing scaler,
        // which `read_branch` detects by remaining length). Newer versions
        // are rejected — their payloads could silently misparse.
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(ModelIoError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let n_sections = cur.u32("section count")? as usize;
        let mut sections = Vec::new();
        for _ in 0..n_sections {
            let name_len = cur.u32("section name length")? as usize;
            if name_len > MAX_NAME_LEN {
                return Err(ModelIoError::Corrupt {
                    context: format!("section name length {name_len} exceeds {MAX_NAME_LEN}"),
                });
            }
            let name_bytes = cur.take(name_len, "section name")?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| ModelIoError::Corrupt {
                    context: "section name is not UTF-8".to_string(),
                })?
                .to_string();
            let payload_len = cur.u64("section payload length")? as usize;
            let start = cur.pos;
            cur.take(payload_len, "section payload")?;
            let stored = cur.u32("section checksum")?;
            sections.push(SectionMeta {
                name,
                payload: start..start + payload_len,
                stored,
                state: AtomicU8::new(CRC_UNCHECKED),
            });
        }
        if cur.pos != bytes.len() {
            return Err(ModelIoError::Corrupt {
                context: format!("{} trailing bytes after the last section", bytes.len() - cur.pos),
            });
        }
        Ok(sections)
    }

    /// Names of all sections, in file order (including any quarantined by a
    /// lenient parse — they are present, just unreadable).
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|m| m.name.as_str())
    }

    /// Whether a section is present.
    #[must_use]
    pub fn has_section(&self, name: &str) -> bool {
        self.sections.iter().any(|m| m.name == name)
    }

    /// A cursor over the named section's payload, verifying its checksum on
    /// first touch. A damaged section yields
    /// [`ModelIoError::ChecksumMismatch`] on every call.
    pub fn section(&self, name: &str) -> Result<SectionReader<'_>, ModelIoError> {
        let bytes = self.backing.bytes();
        let meta = self
            .sections
            .iter()
            .find(|m| m.name == name)
            .ok_or_else(|| ModelIoError::MissingSection { name: name.to_string() })?;
        match meta.verify(bytes) {
            CRC_OK => Ok(SectionReader::new(&bytes[meta.payload.clone()])),
            _ => Err(ModelIoError::ChecksumMismatch {
                section: meta.name.clone(),
                stored: meta.stored,
                // Recomputed only on this cold error path; keeping the meta
                // a bare state byte keeps the hot path allocation-free.
                computed: crc32_concat(&[meta.name.as_bytes(), &bytes[meta.payload.clone()]]),
            }),
        }
    }
}

/// Minimal bounds-checked byte cursor shared by the header parser.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], ModelIoError> {
        if self.buf.len() - self.pos < n {
            return Err(ModelIoError::Truncated { context });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, ModelIoError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, ModelIoError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
}

impl<'a> SectionReader<'a> {
    /// Wrap a raw payload. Sections handed out by [`ModelReader::section`]
    /// are checksum-verified; this constructor is also used for wire frames
    /// (the serve protocol) where integrity comes from the transport.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&[u8], ModelIoError> {
        if self.buf.len() - self.pos < n {
            return Err(ModelIoError::Truncated { context });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn get_u8(&mut self) -> Result<u8, ModelIoError> {
        Ok(self.take(1, "u8")?[0])
    }

    pub fn get_bool(&mut self) -> Result<bool, ModelIoError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(ModelIoError::Corrupt { context: format!("invalid bool byte {v}") }),
        }
    }

    pub fn get_u32(&mut self) -> Result<u32, ModelIoError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn get_u64(&mut self) -> Result<u64, ModelIoError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    pub fn get_usize(&mut self) -> Result<usize, ModelIoError> {
        Ok(self.get_u64()? as usize)
    }

    pub fn get_f32(&mut self) -> Result<f32, ModelIoError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    pub fn get_f64(&mut self) -> Result<f64, ModelIoError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_str(&mut self) -> Result<String, ModelIoError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len, "string")?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ModelIoError::Corrupt { context: "string is not UTF-8".to_string() })
    }

    /// Read a length-prefixed count, bounded by the bytes actually left in
    /// the section, so a corrupted length can never trigger a pathological
    /// allocation.
    fn get_len(&mut self, elem_bytes: usize) -> Result<usize, ModelIoError> {
        let n = self.get_usize()?;
        if n.saturating_mul(elem_bytes) > self.buf.len() - self.pos {
            return Err(ModelIoError::Truncated { context: "length-prefixed array" });
        }
        Ok(n)
    }

    pub fn get_f64s(&mut self) -> Result<Vec<f64>, ModelIoError> {
        let n = self.get_len(8)?;
        (0..n).map(|_| self.get_f64()).collect()
    }

    pub fn get_f32s(&mut self) -> Result<Vec<f32>, ModelIoError> {
        let n = self.get_len(4)?;
        (0..n).map(|_| self.get_f32()).collect()
    }

    pub fn get_usizes(&mut self) -> Result<Vec<usize>, ModelIoError> {
        let n = self.get_len(8)?;
        (0..n).map(|_| self.get_usize()).collect()
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the whole payload was consumed — catches schema drift where a
    /// writer appends fields an older reader does not know about.
    pub fn expect_end(&self, section: &str) -> Result<(), ModelIoError> {
        if self.remaining() != 0 {
            return Err(ModelIoError::Corrupt {
                context: format!(
                    "{} unread bytes at the end of section '{section}'",
                    self.remaining()
                ),
            });
        }
        Ok(())
    }
}
