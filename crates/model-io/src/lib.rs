//! # model-io — the on-disk format of trained DBG4ETH models
//!
//! A versioned, dependency-free binary container for everything the serving
//! path needs: encoder weights, fitted calibrators, and the GBDT forest.
//! The container is deliberately dumb — it knows nothing about tensors or
//! trees, only about named, checksummed byte sections — so every crate
//! serialises its own types with the primitives here and the format cannot
//! drift when model internals change.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "DBGM" | format_version u32 | n_sections u32 |
//!   per section: name_len u32 | name utf-8 | payload_len u64 |
//!                payload bytes | crc32(name ++ payload) u32
//! ```
//!
//! Every multi-byte value inside a payload is written by [`SectionWriter`]
//! and read back by [`SectionReader`]; floats travel as IEEE-754 bit
//! patterns (`to_bits`/`from_bits`), so a round-trip is exact — the
//! load→infer byte-identity contract of `dbg4eth::infer` rests on this.
//!
//! Failure behaviour is part of the API: a truncated, bit-flipped or
//! version-skewed file must surface as a typed [`ModelIoError`], never a
//! panic and never a silently misloaded model. The property tests in
//! `tests/properties.rs` pin this down.

mod crc;
mod error;
mod reader;
mod writer;

pub use crc::crc32;
pub use error::ModelIoError;
pub use reader::{ModelReader, SectionReader};
pub use writer::{ModelWriter, SectionWriter};

/// File magic, first four bytes of every model file.
pub const MAGIC: [u8; 4] = *b"DBGM";

/// Current schema version of the container format.
pub const FORMAT_VERSION: u32 = 1;

/// Hard cap on a section name, so a corrupted length field cannot trigger
/// a pathological allocation before the checksum is ever consulted.
pub(crate) const MAX_NAME_LEN: usize = 4096;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_container_round_trips() {
        let bytes = ModelWriter::new().to_bytes();
        let r = ModelReader::from_bytes(&bytes).unwrap();
        assert!(r.section_names().next().is_none());
    }

    #[test]
    fn sections_round_trip_in_order() {
        let mut w = ModelWriter::new();
        let mut a = SectionWriter::new();
        a.put_u32(7);
        w.push("alpha", a);
        let mut b = SectionWriter::new();
        b.put_str("hello");
        w.push("beta", b);
        let bytes = w.to_bytes();

        let r = ModelReader::from_bytes(&bytes).unwrap();
        let names: Vec<&str> = r.section_names().collect();
        assert_eq!(names, ["alpha", "beta"]);
        assert_eq!(r.section("alpha").unwrap().get_u32().unwrap(), 7);
        assert_eq!(r.section("beta").unwrap().get_str().unwrap(), "hello");
    }

    #[test]
    fn missing_section_is_typed() {
        let bytes = ModelWriter::new().to_bytes();
        let r = ModelReader::from_bytes(&bytes).unwrap();
        match r.section("nope") {
            Err(ModelIoError::MissingSection { name }) => assert_eq!(name, "nope"),
            other => panic!("expected MissingSection, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = ModelWriter::new().to_bytes();
        bytes[0] = b'X';
        match ModelReader::from_bytes(&bytes) {
            Err(ModelIoError::BadMagic { .. }) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn future_version_is_typed() {
        let mut bytes = ModelWriter::new().to_bytes();
        bytes[4] = 0xFF; // bump the version field
        match ModelReader::from_bytes(&bytes) {
            Err(ModelIoError::UnsupportedVersion { found, supported }) => {
                assert_eq!(supported, FORMAT_VERSION);
                assert_ne!(found, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
