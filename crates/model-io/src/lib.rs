//! # model-io — the on-disk format of trained DBG4ETH models
//!
//! A versioned, dependency-free binary container for everything the serving
//! path needs: encoder weights, fitted calibrators, and the GBDT forest.
//! The container is deliberately dumb — it knows nothing about tensors or
//! trees, only about named, checksummed byte sections — so every crate
//! serialises its own types with the primitives here and the format cannot
//! drift when model internals change.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "DBGM" | format_version u32 | n_sections u32 |
//!   per section: name_len u32 | name utf-8 | payload_len u64 |
//!                payload bytes | crc32(name ++ payload) u32
//! ```
//!
//! Every multi-byte value inside a payload is written by [`SectionWriter`]
//! and read back by [`SectionReader`]; floats travel as IEEE-754 bit
//! patterns (`to_bits`/`from_bits`), so a round-trip is exact — the
//! load→infer byte-identity contract of `dbg4eth::Session::score` rests on this.
//!
//! Failure behaviour is part of the API: a truncated, bit-flipped or
//! version-skewed file must surface as a typed [`ModelIoError`], never a
//! panic and never a silently misloaded model. The property tests in
//! `tests/properties.rs` pin this down.

mod crc;
mod error;
mod mmap;
mod reader;
mod writer;

pub use crc::crc32;
pub use error::ModelIoError;
pub use reader::{DamagedSection, ModelReader, SectionReader};
pub use writer::{ModelWriter, SectionWriter};

/// File magic, first four bytes of every model file.
pub const MAGIC: [u8; 4] = *b"DBGM";

/// Current schema version of the container format. Version 2 split the
/// calibration ensembles out of the encoder-branch sections into their own
/// `gsg.cal`/`ldg.cal` sections, so a damaged calibrator can be detected —
/// and degraded around — without losing the encoder weights beside it.
/// Version 3 appends the train-time confidence scaler (mean/std fitted on
/// the holdout split) to each encoder-branch section, so a serving process
/// can score singleton batches without batch-composition-dependent scaling.
pub const FORMAT_VERSION: u32 = 3;

/// Oldest container version this build still reads (every load path,
/// including [`ModelReader::open_mmap`], accepts
/// `MIN_FORMAT_VERSION..=FORMAT_VERSION`). Version 2 branch sections carry
/// no confidence scaler; they load fine, and a pinned-scaling request
/// against them falls back to batch refitting with the scores flagged
/// degraded (`infer.scaler_fallbacks`).
pub const MIN_FORMAT_VERSION: u32 = 2;

/// Hard cap on a section name, so a corrupted length field cannot trigger
/// a pathological allocation before the checksum is ever consulted.
pub(crate) const MAX_NAME_LEN: usize = 4096;

/// Flip one payload byte of the named section in a serialised container,
/// leaving its stored CRC-32 untouched, so loading it yields a
/// [`ModelIoError::ChecksumMismatch`] for exactly that section. Returns
/// `false` (touching nothing) when the section is absent or the bytes do
/// not parse as a container.
///
/// This is the write half of the `corrupt@model.<section>` fault: chaos
/// tests and the fault-injected save path use it to manufacture
/// single-section damage that the degraded load path must contain.
pub fn corrupt_section(bytes: &mut [u8], name: &str) -> bool {
    fn u32_at(b: &[u8], pos: usize) -> Option<u32> {
        Some(u32::from_le_bytes(b.get(pos..pos + 4)?.try_into().ok()?))
    }
    fn u64_at(b: &[u8], pos: usize) -> Option<u64> {
        Some(u64::from_le_bytes(b.get(pos..pos + 8)?.try_into().ok()?))
    }
    let mut pos = MAGIC.len() + 4; // magic + format version
    let Some(n_sections) = u32_at(bytes, pos) else { return false };
    let n_sections = n_sections as usize;
    pos += 4;
    for _ in 0..n_sections {
        let Some(name_len) = u32_at(bytes, pos) else { return false };
        let name_len = name_len as usize;
        pos += 4;
        let Some(section_name) = bytes.get(pos..pos + name_len) else { return false };
        let hit = section_name == name.as_bytes();
        pos += name_len;
        let Some(payload_len) = u64_at(bytes, pos) else { return false };
        let payload_len = payload_len as usize;
        pos += 8;
        if bytes.len() < pos + payload_len + 4 {
            return false;
        }
        if hit {
            // Flip a byte in the middle of the payload; an empty payload
            // gets its checksum flipped instead — either way the stored
            // and computed CRCs now disagree.
            let target = if payload_len > 0 { pos + payload_len / 2 } else { pos + payload_len };
            bytes[target] ^= 0xA5;
            return true;
        }
        pos += payload_len + 4;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_container_round_trips() {
        let bytes = ModelWriter::new().to_bytes();
        let r = ModelReader::from_bytes(&bytes).unwrap();
        assert!(r.section_names().next().is_none());
    }

    #[test]
    fn sections_round_trip_in_order() {
        let mut w = ModelWriter::new();
        let mut a = SectionWriter::new();
        a.put_u32(7);
        w.push("alpha", a);
        let mut b = SectionWriter::new();
        b.put_str("hello");
        w.push("beta", b);
        let bytes = w.to_bytes();

        let r = ModelReader::from_bytes(&bytes).unwrap();
        let names: Vec<&str> = r.section_names().collect();
        assert_eq!(names, ["alpha", "beta"]);
        assert_eq!(r.section("alpha").unwrap().get_u32().unwrap(), 7);
        assert_eq!(r.section("beta").unwrap().get_str().unwrap(), "hello");
    }

    #[test]
    fn missing_section_is_typed() {
        let bytes = ModelWriter::new().to_bytes();
        let r = ModelReader::from_bytes(&bytes).unwrap();
        match r.section("nope") {
            Err(ModelIoError::MissingSection { name }) => assert_eq!(name, "nope"),
            other => panic!("expected MissingSection, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = ModelWriter::new().to_bytes();
        bytes[0] = b'X';
        match ModelReader::from_bytes(&bytes) {
            Err(ModelIoError::BadMagic { .. }) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn future_version_is_typed() {
        let mut bytes = ModelWriter::new().to_bytes();
        bytes[4] = 0xFF; // bump the version field
        match ModelReader::from_bytes(&bytes) {
            Err(ModelIoError::UnsupportedVersion { found, supported }) => {
                assert_eq!(supported, FORMAT_VERSION);
                assert_ne!(found, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn previous_version_is_still_readable_and_the_floor_is_real() {
        let mut w = ModelWriter::new();
        let mut a = SectionWriter::new();
        a.put_u32(7);
        w.push("alpha", a);
        let mut bytes = w.to_bytes();
        // The version field is outside the section CRCs, so rewriting it
        // yields exactly what an older writer would have produced.
        bytes[4..8].copy_from_slice(&MIN_FORMAT_VERSION.to_le_bytes());
        let r = ModelReader::from_bytes(&bytes).expect("v2 containers must load");
        assert_eq!(r.section("alpha").unwrap().get_u32().unwrap(), 7);
        // One below the floor is rejected.
        bytes[4..8].copy_from_slice(&(MIN_FORMAT_VERSION - 1).to_le_bytes());
        match ModelReader::from_bytes(&bytes) {
            Err(ModelIoError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, MIN_FORMAT_VERSION - 1);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_section_hits_exactly_the_named_section() {
        let mut w = ModelWriter::new();
        let mut a = SectionWriter::new();
        a.put_u64(0xDEAD_BEEF);
        w.push("alpha", a);
        let mut b = SectionWriter::new();
        b.put_str("intact");
        w.push("beta", b);
        let mut bytes = w.to_bytes();

        assert!(corrupt_section(&mut bytes, "alpha"));
        match ModelReader::from_bytes(&bytes) {
            Err(ModelIoError::ChecksumMismatch { section, .. }) => assert_eq!(section, "alpha"),
            other => panic!("expected ChecksumMismatch on alpha, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_section_handles_empty_payloads_and_misses() {
        let mut w = ModelWriter::new();
        w.push("empty", SectionWriter::new());
        let mut bytes = w.to_bytes();
        assert!(!corrupt_section(&mut bytes, "absent"));
        assert!(ModelReader::from_bytes(&bytes).is_ok(), "miss must not damage the container");
        assert!(corrupt_section(&mut bytes, "empty"));
        assert!(matches!(
            ModelReader::from_bytes(&bytes),
            Err(ModelIoError::ChecksumMismatch { .. })
        ));
        // Garbage input is a no-op, not a panic.
        let mut junk = vec![1u8, 2, 3];
        assert!(!corrupt_section(&mut junk, "x"));
    }

    #[test]
    fn lenient_parse_keeps_intact_sections_and_reports_damage() {
        let mut w = ModelWriter::new();
        let mut a = SectionWriter::new();
        a.put_u64(1);
        w.push("alpha", a);
        let mut b = SectionWriter::new();
        b.put_u64(2);
        w.push("beta", b);
        let mut bytes = w.to_bytes();
        assert!(corrupt_section(&mut bytes, "alpha"));

        let (r, damaged) = ModelReader::from_bytes_lenient(&bytes).unwrap();
        assert_eq!(damaged.len(), 1);
        assert_eq!(damaged[0].name, "alpha");
        assert_ne!(damaged[0].stored, damaged[0].computed);
        // The damaged section is quarantined with its evidence; the intact
        // one still reads.
        match r.section("alpha") {
            Err(ModelIoError::ChecksumMismatch { section, stored, computed }) => {
                assert_eq!(section, "alpha");
                assert_eq!((stored, computed), (damaged[0].stored, damaged[0].computed));
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        assert_eq!(r.section("beta").unwrap().get_u64().unwrap(), 2);
        // Structural damage is still fatal even leniently.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(ModelReader::from_bytes_lenient(&bad).is_err());
    }

    #[test]
    fn mmap_load_round_trips_and_defers_crc_to_first_touch() {
        let mut w = ModelWriter::new();
        let mut a = SectionWriter::new();
        a.put_f64s(&[1.5, -2.25, f64::NAN]);
        w.push("alpha", a);
        let mut b = SectionWriter::new();
        b.put_str("mapped");
        w.push("beta", b);
        let mut bytes = w.to_bytes();
        assert!(corrupt_section(&mut bytes, "beta"));

        let path = std::env::temp_dir().join(format!("dbg4eth-modelio-{}.bin", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        // Structure parses even though one checksum is bad — the damage is
        // only discovered when that section is first touched.
        let r = ModelReader::open_mmap(&path).unwrap();
        let names: Vec<&str> = r.section_names().collect();
        assert_eq!(names, ["alpha", "beta"]);
        let vals = r.section("alpha").unwrap().get_f64s().unwrap();
        assert_eq!(vals[0].to_bits(), 1.5f64.to_bits());
        assert_eq!(vals[2].to_bits(), f64::NAN.to_bits());
        match r.section("beta") {
            Err(ModelIoError::ChecksumMismatch { section, stored, computed }) => {
                assert_eq!(section, "beta");
                assert_ne!(stored, computed);
            }
            other => panic!("expected ChecksumMismatch on first touch, got {other:?}"),
        }
        // The verdict is sticky: a second touch fails identically.
        assert!(matches!(r.section("beta"), Err(ModelIoError::ChecksumMismatch { .. })));
        drop(r);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_load_rejects_structural_damage_eagerly() {
        let mut bytes = ModelWriter::new().to_bytes();
        bytes[0] = b'X';
        let path =
            std::env::temp_dir().join(format!("dbg4eth-modelio-bad-{}.bin", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(ModelReader::open_mmap(&path), Err(ModelIoError::BadMagic { .. })));
        std::fs::remove_file(&path).ok();
        // A missing file is a typed Io error, not a panic.
        assert!(matches!(
            ModelReader::open_mmap("/nonexistent/dbg4eth-model.bin"),
            Err(ModelIoError::Io(_))
        ));
    }

    #[test]
    fn section_reader_new_walks_a_raw_buffer() {
        let mut w = SectionWriter::new();
        w.put_u32(9);
        w.put_str("frame");
        let bytes = w.into_bytes();
        let mut r = SectionReader::new(&bytes);
        assert_eq!(r.get_u32().unwrap(), 9);
        assert_eq!(r.get_str().unwrap(), "frame");
        r.expect_end("wire").unwrap();
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
