//! Read-only memory mapping without a libc dependency.
//!
//! The serving daemon loads one model container per process; mapping the
//! file read-only instead of heap-copying it lets N server processes share
//! the same physical pages (the kernel's page cache) and makes startup
//! O(sections) instead of O(bytes). The workspace builds offline with no
//! registry access, so there is no `libc`/`memmap2` to lean on — on Linux
//! (x86_64 / aarch64) the map is made with raw `mmap`/`munmap` syscalls;
//! everywhere else [`Map::open`] degrades to an ordinary heap read with the
//! same API, so callers never need to care.
//!
//! The mapping is `PROT_READ` + `MAP_PRIVATE`: nothing here can write
//! through to the file, and the checksum layer above detects on-disk
//! corruption on first touch. Truncating the file while it is mapped is
//! undefined behaviour at the OS level (SIGBUS on touch), as with any mmap
//! consumer; the model container is written atomically (`write → rename`)
//! precisely so live files are never truncated in place.
//!
//! That write→rename discipline is the *whole* immutability contract, not
//! just truncation safety. The mapped bytes are handed out as a long-lived
//! `&[u8]` (and shared across threads), and the reader above caches each
//! section's CRC verdict after first touch — so another process rewriting
//! the live file *in place* (same inode, no truncation) would change bytes
//! under safe code with nobody re-checking them. Renaming a freshly
//! written file over the path instead leaves existing mappings pinned to
//! the old inode, which is why the in-repo writer publishes that way; any
//! external tooling that updates model files must do the same.

use std::path::Path;

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod imp {
    use super::Path;
    use std::fs::File;
    use std::io;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    #[cfg(target_arch = "x86_64")]
    const SYS_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    const SYS_MUNMAP: usize = 11;
    #[cfg(target_arch = "aarch64")]
    const SYS_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    const SYS_MUNMAP: usize = 215;

    /// `mmap(NULL, len, PROT_READ, MAP_PRIVATE, fd, 0)` as a raw syscall.
    /// Returns the mapped address, or a negative errno in `-4095..0`.
    unsafe fn sys_mmap(len: usize, fd: i32) -> isize {
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MMAP as isize => ret,
            in("rdi") 0usize,
            in("rsi") len,
            in("rdx") PROT_READ,
            in("r10") MAP_PRIVATE,
            in("r8") fd as isize,
            in("r9") 0usize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        #[cfg(target_arch = "aarch64")]
        std::arch::asm!(
            "svc #0",
            inlateout("x0") 0usize => ret,
            in("x1") len,
            in("x2") PROT_READ,
            in("x3") MAP_PRIVATE,
            in("x4") fd as isize,
            in("x5") 0usize,
            in("x8") SYS_MMAP,
            options(nostack),
        );
        ret
    }

    unsafe fn sys_munmap(addr: *const u8, len: usize) -> isize {
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MUNMAP as isize => ret,
            in("rdi") addr,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        #[cfg(target_arch = "aarch64")]
        std::arch::asm!(
            "svc #0",
            inlateout("x0") addr => ret,
            in("x1") len,
            in("x8") SYS_MUNMAP,
            options(nostack),
        );
        ret
    }

    /// A read-only private mapping of a whole file.
    pub struct Map {
        ptr: *const u8,
        len: usize,
    }

    // The mapping is immutable for its whole lifetime and freed exactly
    // once in Drop, so sharing it across threads is sound.
    unsafe impl Send for Map {}
    unsafe impl Sync for Map {}

    impl Map {
        pub fn open(path: &Path) -> io::Result<Self> {
            use std::os::unix::io::AsRawFd;
            let file = File::open(path)?;
            // `slice::from_raw_parts` requires the byte length to fit in
            // `isize`, not just `usize`, so clamp to that bound up front.
            let len = usize::try_from(file.metadata()?.len())
                .ok()
                .filter(|&n| isize::try_from(n).is_ok())
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "file too large to map")
                })?;
            if len == 0 {
                // mmap rejects zero-length maps; an empty file is an empty
                // slice, no mapping needed.
                return Ok(Self { ptr: std::ptr::null(), len: 0 });
            }
            // The mapping outlives the fd: closing the file after mmap is
            // fine, the pages stay valid until munmap.
            let ret = unsafe { sys_mmap(len, file.as_raw_fd()) };
            if (-4095..0).contains(&ret) {
                #[allow(clippy::cast_possible_truncation)]
                return Err(io::Error::from_raw_os_error(-ret as i32));
            }
            Ok(Self { ptr: ret as *const u8, len })
        }

        #[must_use]
        pub fn bytes(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            // Safety: ptr/len describe a live PROT_READ mapping owned by
            // self; it is unmapped only in Drop.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }

        /// Whether this build actually maps pages (false on the heap-read
        /// fallback used off Linux).
        #[must_use]
        pub fn is_mapped(&self) -> bool {
            !self.ptr.is_null()
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            if !self.ptr.is_null() {
                // Failure here is unrecoverable and harmless (the address
                // range just stays reserved); nothing useful to do with it.
                let _ = unsafe { sys_munmap(self.ptr, self.len) };
            }
        }
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod imp {
    use super::Path;
    use std::io;

    /// Heap-read fallback with the mapping API: same behaviour, no page
    /// sharing. Keeps every caller portable without a cfg in sight.
    pub struct Map {
        buf: Vec<u8>,
    }

    impl Map {
        pub fn open(path: &Path) -> io::Result<Self> {
            Ok(Self { buf: std::fs::read(path)? })
        }

        #[must_use]
        pub fn bytes(&self) -> &[u8] {
            &self.buf
        }

        #[must_use]
        pub fn is_mapped(&self) -> bool {
            false
        }
    }
}

pub(crate) use imp::Map;

impl std::fmt::Debug for Map {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Map")
            .field("len", &self.bytes().len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_a_file_and_reads_it_back() {
        let path = std::env::temp_dir().join(format!("dbg4eth-mmap-{}.bin", std::process::id()));
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).unwrap();
        let map = Map::open(&path).unwrap();
        assert_eq!(map.bytes(), &payload[..]);
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_an_empty_slice() {
        let path =
            std::env::temp_dir().join(format!("dbg4eth-mmap-empty-{}.bin", std::process::id()));
        std::fs::write(&path, b"").unwrap();
        let map = Map::open(&path).unwrap();
        assert!(map.bytes().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(Map::open(Path::new("/nonexistent/dbg4eth-mmap-test")).is_err());
    }

    #[test]
    fn map_is_shareable_across_threads() {
        let path =
            std::env::temp_dir().join(format!("dbg4eth-mmap-threads-{}.bin", std::process::id()));
        std::fs::write(&path, vec![7u8; 4096]).unwrap();
        let map = std::sync::Arc::new(Map::open(&path).unwrap());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&map);
                s.spawn(move || assert!(m.bytes().iter().all(|&b| b == 7)));
            }
        });
        std::fs::remove_file(&path).ok();
    }
}
