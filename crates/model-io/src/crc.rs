//! IEEE CRC-32 (the polynomial used by zip/png), table-driven.

/// The 256-entry lookup table for the reflected polynomial `0xEDB88320`,
/// built once at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `bytes` (IEEE, init `!0`, final xor `!0`).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = !0u32;
    for &b in bytes {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Incremental variant: continue a checksum across several slices.
#[must_use]
pub fn crc32_concat(parts: &[&[u8]]) -> u32 {
    let t = table();
    let mut c = !0u32;
    for part in parts {
        for &b in *part {
            c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_matches_single_pass() {
        let data = b"the quick brown fox jumps over the lazy dog";
        assert_eq!(crc32(data), crc32_concat(&[&data[..9], &data[9..]]));
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let a = vec![0u8; 64];
        let mut b = a.clone();
        b[17] ^= 0x04;
        assert_ne!(crc32(&a), crc32(&b));
    }
}
