//! Property tests of the model container: arbitrary payloads round-trip
//! exactly, and *any* truncation or bit flip surfaces as a typed
//! [`ModelIoError`] — never a panic, never a silently different payload.

use model_io::{ModelIoError, ModelReader, ModelWriter, SectionWriter};
use proptest::prelude::*;

/// An arbitrary section payload: a name and a mix of typed values.
#[derive(Clone, Debug, PartialEq)]
struct Payload {
    name: String,
    floats: Vec<f64>,
    singles: Vec<f32>,
    words: Vec<usize>,
    text: String,
    flag: bool,
}

fn payloads() -> impl Strategy<Value = Vec<Payload>> {
    prop::collection::vec(
        (
            0usize..6,
            prop::collection::vec(-1e12f64..1e12, 0..40),
            prop::collection::vec(-1e6f32..1e6, 0..40),
            (0usize..20, any::<bool>()),
        ),
        1..5,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (name_idx, floats, singles, (n_words, flag)))| Payload {
                // Unique per-section names (duplicates are a writer bug, not
                // a format feature).
                name: format!("sec{i}.{}", ["a", "b", "c", "d", "e", "f"][name_idx]),
                floats,
                singles,
                words: (0..n_words).map(|w| w * 7 + 1).collect(),
                text: format!("t{n_words}"),
                flag,
            })
            .collect()
    })
}

fn encode(sections: &[Payload]) -> Vec<u8> {
    let mut w = ModelWriter::new();
    for p in sections {
        let mut s = SectionWriter::new();
        s.put_f64s(&p.floats);
        s.put_f32s(&p.singles);
        s.put_usizes(&p.words);
        s.put_str(&p.text);
        s.put_bool(p.flag);
        w.push(&p.name, s);
    }
    w.to_bytes()
}

fn decode(bytes: &[u8], sections: &[Payload]) -> Result<Vec<Payload>, ModelIoError> {
    let r = ModelReader::from_bytes(bytes)?;
    sections
        .iter()
        .map(|p| {
            let mut s = r.section(&p.name)?;
            let out = Payload {
                name: p.name.clone(),
                floats: s.get_f64s()?,
                singles: s.get_f32s()?,
                words: s.get_usizes()?,
                text: s.get_str()?,
                flag: s.get_bool()?,
            };
            s.expect_end(&p.name)?;
            Ok(out)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Save → load is the identity on every section, bit for bit.
    #[test]
    fn arbitrary_payloads_round_trip(sections in payloads()) {
        let bytes = encode(&sections);
        let loaded = decode(&bytes, &sections).expect("intact container loads");
        prop_assert_eq!(loaded.len(), sections.len());
        for (a, b) in loaded.iter().zip(&sections) {
            // Compare float bit patterns: NaN-safe and rounding-free.
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(&a.floats), bits(&b.floats));
            let sbits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(sbits(&a.singles), sbits(&b.singles));
            prop_assert_eq!(&a.words, &b.words);
            prop_assert_eq!(&a.text, &b.text);
            prop_assert_eq!(a.flag, b.flag);
        }
    }

    /// Every strict prefix of a container fails to load with a typed error.
    #[test]
    fn truncation_is_always_detected(sections in payloads(), cut in 0.0f64..1.0) {
        let bytes = encode(&sections);
        prop_assume!(bytes.len() > 12);
        let keep = (cut * (bytes.len() - 1) as f64) as usize;
        let truncated = &bytes[..keep];
        match decode(truncated, &sections) {
            Ok(_) => prop_assert!(false, "truncated container at {keep}/{} loaded", bytes.len()),
            Err(e) => {
                // Force the Display path too: a typed error must format.
                let _ = e.to_string();
            }
        }
    }

    /// Flipping any single bit anywhere in the container is detected: the
    /// checksum (or framing validation) rejects the file with a typed error.
    #[test]
    fn bit_flips_are_always_detected(
        sections in payloads(),
        pos in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let mut bytes = encode(&sections);
        let i = (pos * (bytes.len() - 1) as f64) as usize;
        bytes[i] ^= 1 << bit;
        match decode(&bytes, &sections) {
            Ok(_) => prop_assert!(false, "bit flip at byte {i} bit {bit} went undetected"),
            Err(e) => { let _ = e.to_string(); }
        }
    }
}

#[test]
fn checksum_mismatch_names_the_section() {
    let mut w = ModelWriter::new();
    let mut s = SectionWriter::new();
    s.put_f64s(&[1.0, 2.0, 3.0]);
    w.push("gbdt", s);
    let mut bytes = w.to_bytes();
    // Flip a payload byte: past magic(4) + version(4) + count(4) +
    // name_len(4) + "gbdt"(4) + payload_len(8), inside the payload.
    let n = bytes.len();
    bytes[n - 6] ^= 0x10;
    match ModelReader::from_bytes(&bytes) {
        Err(ModelIoError::ChecksumMismatch { section, .. }) => assert_eq!(section, "gbdt"),
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}
