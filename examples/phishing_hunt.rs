//! Phishing hunt: the intro's motivating scenario — large-scale
//! de-anonymization surveillance with limited resources, where *calibrated*
//! confidence decides which accounts an investigator looks at first.
//!
//! Trains DBG4ETH on the phish/hack dataset, then ranks the test accounts
//! by calibrated phishing probability and prints the triage queue.
//!
//! ```sh
//! cargo run --release -p dbg4eth --example phishing_hunt
//! ```

use dbg4eth::{run, Dbg4EthConfig};
use eth_graph::SamplerConfig;
use eth_sim::{AccountClass, Benchmark, DatasetScale};

fn main() {
    let bench = Benchmark::generate(DatasetScale::small(), SamplerConfig::new(2000, 2), 21);
    let dataset = bench.dataset(AccountClass::PhishHack);
    println!("phish/hack dataset: {} graphs, training on 80%...", dataset.graphs.len());
    let out = run(dataset, 0.8, &Dbg4EthConfig::default());
    println!(
        "test metrics: P {:.1}% R {:.1}% F1 {:.1}% Acc {:.1}%\n",
        out.metrics.precision, out.metrics.recall, out.metrics.f1, out.metrics.accuracy
    );

    // Triage queue: rank unseen accounts by calibrated confidence.
    let mut queue: Vec<(usize, f64, bool)> = out
        .test_scores
        .iter()
        .zip(&out.test_labels)
        .enumerate()
        .map(|(i, (&p, &y))| (i, p, y))
        .collect();
    queue.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    println!("top-10 triage queue (highest calibrated phishing probability):");
    println!("{:>5} {:>12} {:>14}", "rank", "P(phish)", "actually phish");
    for (rank, (_, p, y)) in queue.iter().take(10).enumerate() {
        println!("{:>5} {:>12.4} {:>14}", rank + 1, p, if *y { "yes" } else { "no" });
    }

    // Budgeted-investigation quality: precision within the top-k queue.
    for k in [5usize, 10, 20] {
        let k = k.min(queue.len());
        let hits = queue.iter().take(k).filter(|(_, _, y)| *y).count();
        println!("precision@{k}: {:.1}%", 100.0 * hits as f64 / k as f64);
    }
    println!("\nWith limited investigation budget, calibrated probabilities make the");
    println!("queue ordering trustworthy — the paper's challenge (ii).");
}
