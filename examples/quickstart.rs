//! Quickstart: generate a synthetic Ethereum world, build the exchange
//! dataset, run the full DBG4ETH pipeline and print its metrics.
//!
//! ```sh
//! cargo run --release -p dbg4eth --example quickstart
//! ```

use dbg4eth::{run, Dbg4EthConfig};
use eth_graph::SamplerConfig;
use eth_sim::{AccountClass, Benchmark, DatasetScale};

fn main() {
    // 1. A synthetic Ethereum world with labelled accounts of six types
    //    (the substitution for the paper's on-chain data; see DESIGN.md).
    let bench = Benchmark::generate(DatasetScale::small(), SamplerConfig::new(2000, 2), 7);

    // 2. Pick a dataset: exchange-vs-rest binary graph classification.
    let dataset = bench.dataset(AccountClass::Exchange);
    let stats = dataset.stats();
    println!(
        "exchange dataset: {} graphs ({} positive), avg {:.1} nodes / {:.1} edges",
        stats.graphs, stats.positives, stats.avg_nodes, stats.avg_edges
    );

    // 3. Run the double-graph pipeline: GSG (hierarchical attention +
    //    contrastive regularisation), LDG (GCN + GRU + DiffPool), adaptive
    //    confidence calibration, LightGBM classification.
    let out = run(dataset, 0.8, &Dbg4EthConfig::default());

    println!(
        "DBG4ETH   precision {:.2}%  recall {:.2}%  F1 {:.2}%  accuracy {:.2}%",
        out.metrics.precision, out.metrics.recall, out.metrics.f1, out.metrics.accuracy
    );
    if let Some(gsg) = &out.gsg {
        println!("GSG branch calibration: ECE {:.3} -> {:.3}", gsg.base_ece, gsg.calibrated_ece);
    }
    if let Some(ldg) = &out.ldg {
        println!("LDG branch calibration: ECE {:.3} -> {:.3}", ldg.base_ece, ldg.calibrated_ece);
    }
}
