//! Calibration, stand-alone: how the six methods and the adaptive ensemble
//! behave on a deliberately over-confident model (the paper's challenge
//! (ii): predicted probabilities should reflect reality).
//!
//! ```sh
//! cargo run --release -p dbg4eth --example calibration_demo
//! ```

use calib::{ece, AdaptiveCalibrator, CalibMethod, Calibrator, MethodSubset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Simulate an over-confident classifier: it reports 0.95 / 0.05, but is
    // right only ~75% of the time.
    let mut rng = StdRng::seed_from_u64(5);
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for _ in 0..2000 {
        let positive = rng.gen_bool(0.5);
        let correct = rng.gen_bool(0.75);
        let predicted_positive = positive == correct;
        scores.push(if predicted_positive { 0.95 } else { 0.05 });
        labels.push(positive);
    }
    let base = ece(&scores, &labels, 10);
    println!("over-confident model: raw ECE = {base:.4}\n");

    println!("{:<14} {:>10} {:>10}", "method", "ECE after", "ΔECE");
    for method in CalibMethod::ALL {
        let cal = Calibrator::fit(method, &scores, &labels);
        let e = ece(&cal.apply_all(&scores), &labels, 10);
        println!("{:<14} {:>10.4} {:>10.4}", method.name(), e, base - e);
    }

    let ada = AdaptiveCalibrator::fit(&scores, &labels, MethodSubset::All, true);
    let e = ece(&ada.calibrate_all(&scores), &labels, 10);
    println!("{:<14} {:>10.4} {:>10.4}", "adaptive", e, base - e);

    println!("\nadaptive weights (Eq. 25):");
    for (m, w) in ada.method_weights() {
        println!("  {:<14} {:+.3}", m.name(), w);
    }
    println!(
        "\nA 0.95 report now maps to {:.3} — close to the true 0.75 hit rate.",
        ada.calibrate(0.95)
    );
}
