//! Compliance monitor ("know your account"): one-vs-rest triage over all
//! six account categories, including the novel types bridge and defi
//! (RQ4 — the dynamic cryptocurrency market).
//!
//! A regulator-style dashboard: for each category we train a DBG4ETH
//! instance and report how reliably the monitor flags that category.
//!
//! ```sh
//! cargo run --release -p dbg4eth --example compliance_monitor
//! ```

use dbg4eth::{run, Dbg4EthConfig};
use eth_graph::SamplerConfig;
use eth_sim::{AccountClass, Benchmark, DatasetScale};

fn main() {
    let bench = Benchmark::generate(DatasetScale::small(), SamplerConfig::new(2000, 2), 33);
    let cfg = Dbg4EthConfig::builder().epochs(10).build().expect("valid configuration");

    println!("== account compliance monitor: one detector per category ==");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "category", "P", "R", "F1", "Acc", "ECE(GSG)"
    );
    let mut worst: Option<(AccountClass, f64)> = None;
    for class in AccountClass::LABELLED {
        let out = run(bench.dataset(class), 0.8, &cfg);
        let ece = out.gsg.as_ref().map_or(f64::NAN, |d| d.calibrated_ece);
        println!(
            "{:<12} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>10.3}",
            class.name(),
            out.metrics.precision,
            out.metrics.recall,
            out.metrics.f1,
            out.metrics.accuracy,
            ece
        );
        if worst.is_none_or(|(_, f1)| out.metrics.f1 < f1) {
            worst = Some((class, out.metrics.f1));
        }
    }
    if let Some((class, f1)) = worst {
        println!(
            "\nweakest detector: {} (F1 {:.2}) — the category to collect more labels for.",
            class.name(),
            f1
        );
    }
    println!("bridge/defi rows show the monitor extends to novel account types (RQ4).");
}
