//! Evolution analysis: peek inside the Local Dynamic Graph encoder — which
//! time slices does the learned read-out attention (Eq. 22) consider
//! important for different account types?
//!
//! Bursty behaviours (ico-wallet funding windows, phishing sweeps) should
//! concentrate attention, while always-on behaviours (exchanges) spread it.
//!
//! ```sh
//! cargo run --release -p dbg4eth --example evolution_analysis
//! ```

use dbg4eth::{train_ldg, Dbg4EthConfig};
use eth_graph::SamplerConfig;
use eth_sim::{AccountClass, Benchmark, DatasetScale, POSITIVE};
use gnn::GraphTensors;

fn main() {
    let bench = Benchmark::generate(DatasetScale::small(), SamplerConfig::new(2000, 2), 11);
    let cfg = Dbg4EthConfig::builder().epochs(10).build().expect("valid configuration");

    println!("learned time-slice attention α_t (Eq. 22), per account type:");
    println!("(T = {} slices over each account's normalised lifetime)\n", cfg.t_slices);
    for class in [AccountClass::Exchange, AccountClass::IcoWallet, AccountClass::PhishHack] {
        let dataset = bench.dataset(class);
        let graphs: Vec<GraphTensors> = dataset
            .graphs
            .iter()
            .filter(|g| g.label == Some(POSITIVE))
            .map(|g| GraphTensors::from_subgraph(g, cfg.t_slices))
            .collect();
        let refs: Vec<&GraphTensors> = graphs.iter().collect();
        let trained = train_ldg(&refs, &cfg);
        // The attention logits are a trained parameter; softmax them.
        let id = trained.store.find("ldg.time_attn").expect("attention parameter");
        let logits = trained.store.value(id);
        let max = logits.max();
        let exps: Vec<f32> = logits.data().iter().map(|&x| (x - max).exp()).collect();
        let total: f32 = exps.iter().sum();
        print!("{:<12}", class.name());
        for e in &exps {
            print!(" {:>6.3}", e / total);
        }
        println!();
    }
    println!("\nHigher weights on early slices indicate burst-driven classes; near-uniform");
    println!("weights indicate always-on behaviour. The read-out learned this unsupervised.");
}
